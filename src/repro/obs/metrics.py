"""A lightweight, thread-safe metrics registry.

Counters (monotone), gauges (last-write-wins, with a high-water mark),
and log-bucketed histograms (count/total/min/max plus ``quantile(q)``
tail estimates), plus ``span()`` timing contexts built on
``time.perf_counter``.  ``snapshot()`` returns a plain nested dict,
stable enough to print, JSON-encode, or assert on in tests; the
default shape is unchanged from v1, and ``snapshot(quantiles=True)``
adds p50/p90/p99 per histogram.  ``to_prometheus()`` renders the
whole registry in the Prometheus text exposition format (the
``GET /metricsz?format=prom`` body).

Instruments are created lazily on first use and identified by dotted
names (``"analyze.direct.seconds"``); re-requesting a name returns the
same instrument, so independent call sites accumulate into one series.

Every instrument is lock-guarded: the serve layer's handler threads
hammer one shared registry, and an unguarded ``dict`` insert or
read-modify-write ``+=`` would silently under-count.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from contextlib import contextmanager
from threading import Lock
from typing import Iterator

#: Geometric bucket upper bounds: 1µs doubling up to ~134s.  Latencies
#: above the last bound land in the +Inf overflow bucket.  ×2 growth
#: bounds any quantile's relative error by the bucket width.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    1e-6 * 2.0**exponent for exponent in range(28)
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value with a high-water mark."""

    __slots__ = ("name", "value", "max_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0
        self.max_value: float = 0
        self._lock = Lock()

    def set(self, value: float) -> None:
        """Record the current value."""
        with self._lock:
            self.value = value
            if value > self.max_value:
                self.max_value = value

    def set_max(self, value: float) -> None:
        """Record ``value`` only if it exceeds the high-water mark."""
        with self._lock:
            if value > self.max_value:
                self.value = value
                self.max_value = value


class Histogram:
    """A log-bucketed distribution of an observed series.

    Keeps the exact count/total/min/max summaries of the v1 histogram
    and additionally counts observations into geometric buckets
    (`DEFAULT_BUCKETS`), which makes tail quantiles — the p99 a
    summary-only histogram literally cannot represent — computable via
    `quantile`.
    """

    __slots__ = (
        "name", "count", "total", "min", "max", "bounds", "buckets",
        "_lock",
    )

    def __init__(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> None:
        self.name = name
        self.count = 0
        self.total: float = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.bounds = bounds
        # one slot per bound plus the +Inf overflow slot
        self.buckets = [0] * (len(bounds) + 1)
        self._lock = Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            self.buckets[bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float | None:
        """The arithmetic mean, or None before any observation."""
        if self.count == 0:
            return None
        return self.total / self.count

    def quantile(self, q: float) -> float | None:
        """The ``q``-quantile (0 ≤ q ≤ 1), or None before any
        observation.

        Linear interpolation inside the containing bucket (the
        Prometheus ``histogram_quantile`` rule), clamped to the exact
        observed min/max so p0/p100 are precise.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        with self._lock:
            if self.count == 0:
                return None
            target = q * self.count
            cumulative = 0
            for index, bucket_count in enumerate(self.buckets):
                if bucket_count == 0:
                    continue
                if cumulative + bucket_count >= target:
                    lower = self.bounds[index - 1] if index > 0 else 0.0
                    upper = (
                        self.bounds[index]
                        if index < len(self.bounds)
                        else self.max
                    )
                    fraction = (target - cumulative) / bucket_count
                    value = lower + (upper - lower) * fraction
                    return min(max(value, self.min), self.max)
                cumulative += bucket_count
            return self.max  # pragma: no cover - target <= count always

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, Prometheus-style
        (the final pair is ``(inf, count)``)."""
        with self._lock:
            pairs = []
            cumulative = 0
            for bound, bucket_count in zip(self.bounds, self.buckets):
                cumulative += bucket_count
                pairs.append((bound, cumulative))
            pairs.append((float("inf"), self.count))
            return pairs

    def summary(self, quantiles: bool = False) -> dict:
        """The snapshot entry; with ``quantiles`` adds p50/p90/p99."""
        entry = {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }
        if quantiles:
            entry["p50"] = self.quantile(0.50)
            entry["p90"] = self.quantile(0.90)
            entry["p99"] = self.quantile(0.99)
        return entry


def _prom_name(name: str) -> str:
    """A dotted instrument name as a Prometheus metric name."""
    sanitized = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"repro_{sanitized}"


def _prom_value(value: float | None) -> str:
    if value is None:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


class Metrics:
    """The registry: named counters, gauges, histograms, and spans."""

    __slots__ = ("_counters", "_gauges", "_histograms", "_lock")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = Lock()

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``, created on first use."""
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name)
            return instrument

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a block with ``time.perf_counter``.

        The duration lands in the histogram ``{name}.seconds`` and the
        counter ``{name}.calls``; exceptions propagate but the span is
        still recorded (aborted work is work too).
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.histogram(f"{name}.seconds").observe(elapsed)
            self.counter(f"{name}.calls").inc()

    def merge_stats(self, prefix: str, stats: dict[str, int]) -> None:
        """Fold a plain stats dict (e.g. ``AnalysisStats.as_dict()``)
        into counters/gauges under ``prefix``."""
        for key, value in stats.items():
            if key.startswith("max_"):
                self.gauge(f"{prefix}.{key}").set_max(value)
            else:
                self.counter(f"{prefix}.{key}").inc(value)

    def _instruments(self) -> tuple[list, list, list]:
        with self._lock:
            return (
                sorted(self._counters.items()),
                sorted(self._gauges.items()),
                sorted(self._histograms.items()),
            )

    def snapshot(self, quantiles: bool = False) -> dict:
        """A JSON-serializable view of every instrument.

        The default shape is the stable v1 contract; ``quantiles=True``
        adds ``p50``/``p90``/``p99`` to each histogram entry (what
        ``GET /metricsz`` serves).
        """
        counters, gauges, histograms = self._instruments()
        return {
            "counters": {name: counter.value for name, counter in counters},
            "gauges": {
                name: {"value": gauge.value, "max": gauge.max_value}
                for name, gauge in gauges
            },
            "histograms": {
                name: hist.summary(quantiles=quantiles)
                for name, hist in histograms
            },
        }

    def to_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format
        (version 0.0.4): counters, gauges (plus their ``_max`` high
        -water marks), and histograms with cumulative ``_bucket``
        series, ``_sum``, and ``_count``."""
        lines: list[str] = []
        counters, gauges, histograms = self._instruments()
        for name, counter in counters:
            metric = _prom_name(name)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {counter.value}")
        for name, gauge in gauges:
            metric = _prom_name(name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_prom_value(gauge.value)}")
            lines.append(f"# TYPE {metric}_max gauge")
            lines.append(f"{metric}_max {_prom_value(gauge.max_value)}")
        for name, hist in histograms:
            metric = _prom_name(name)
            lines.append(f"# TYPE {metric} histogram")
            for bound, cumulative in hist.cumulative_buckets():
                le = "+Inf" if bound == float("inf") else f"{bound:.6g}"
                lines.append(
                    f'{metric}_bucket{{le="{le}"}} {cumulative}'
                )
            lines.append(f"{metric}_sum {_prom_value(hist.total)}")
            lines.append(f"{metric}_count {hist.count}")
        return "\n".join(lines) + "\n"
