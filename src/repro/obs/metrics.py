"""A lightweight metrics registry.

Counters (monotone), gauges (last-write-wins, with a high-water mark),
and histograms (count/total/min/max), plus ``span()`` timing contexts
built on ``time.perf_counter``.  ``snapshot()`` returns a plain nested
dict, stable enough to print, JSON-encode, or assert on in tests.

Instruments are created lazily on first use and identified by dotted
names (``"analyze.direct.seconds"``); re-requesting a name returns the
same instrument, so independent call sites accumulate into one series.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """A point-in-time value with a high-water mark."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0
        self.max_value: float = 0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def set_max(self, value: float) -> None:
        """Record ``value`` only if it exceeds the high-water mark."""
        if value > self.max_value:
            self.value = value
            self.max_value = value


class Histogram:
    """Summary statistics of an observed series."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total: float = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float | None:
        """The arithmetic mean, or None before any observation."""
        if self.count == 0:
            return None
        return self.total / self.count


class Metrics:
    """The registry: named counters, gauges, histograms, and spans."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``, created on first use."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a block with ``time.perf_counter``.

        The duration lands in the histogram ``{name}.seconds`` and the
        counter ``{name}.calls``; exceptions propagate but the span is
        still recorded (aborted work is work too).
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.histogram(f"{name}.seconds").observe(elapsed)
            self.counter(f"{name}.calls").inc()

    def merge_stats(self, prefix: str, stats: dict[str, int]) -> None:
        """Fold a plain stats dict (e.g. ``AnalysisStats.as_dict()``)
        into counters/gauges under ``prefix``."""
        for key, value in stats.items():
            if key.startswith("max_"):
                self.gauge(f"{prefix}.{key}").set_max(value)
            else:
                self.counter(f"{prefix}.{key}").inc(value)

    def snapshot(self) -> dict:
        """A JSON-serializable view of every instrument."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: {"value": gauge.value, "max": gauge.max_value}
                for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "count": hist.count,
                    "total": hist.total,
                    "mean": hist.mean,
                    "min": hist.min,
                    "max": hist.max,
                }
                for name, hist in sorted(self._histograms.items())
            },
        }
