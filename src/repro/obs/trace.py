"""Request-scoped span tracing (`repro.obs` v2).

A *trace* is one logical request; a *span* is one timed region inside
it (queue wait, plan compile, analyzer run, serialization).  The
current trace context travels in a `contextvars.ContextVar`, so
nested ``span()`` calls build a parent/child tree without threading
any handle through signatures — and `activate()` carries the context
across explicit thread boundaries (the serve worker pool).

Identifiers follow the W3C ``traceparent`` shape: a 32-hex trace id
and 16-hex span ids, accepted and emitted as
``00-<trace_id>-<span_id>-01`` by the HTTP layer
(`parse_traceparent` / `format_traceparent`).

The cardinal `repro.obs` rule carries over: with no active trace —
the library default — ``span()`` returns one shared no-op object and
allocates nothing, so instrumented hot paths cost nothing when nobody
is collecting (test-enforced next to the `NullSink` overhead test).

Typical service-side use::

    ctx = begin_trace(request_headers.get("traceparent"))
    with activate(ctx):
        with span("request", route="/v1/analyze") as root:
            ...
            with span("analyze", analyzer="direct"):
                ...
    ctx.trace.spans()   # -> [SpanRecord, ...], all sharing ctx.trace_id
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator


def new_trace_id() -> str:
    """A fresh 32-hex (128-bit) trace id."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 16-hex (64-bit) span id."""
    return os.urandom(8).hex()


def parse_traceparent(header: str | None) -> tuple[str, str] | None:
    """Extract ``(trace_id, span_id)`` from a ``traceparent`` header.

    Accepts the W3C version-00 shape ``00-<32hex>-<16hex>-<2hex>``;
    anything malformed (including all-zero ids) returns None and the
    caller starts a fresh trace.
    """
    if not header:
        return None
    parts = header.strip().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, _flags = parts
    if version != "00":
        return None
    if len(trace_id) != 32 or len(span_id) != 16:
        return None
    try:
        int(trace_id, 16)
        int(span_id, 16)
    except ValueError:
        return None
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return trace_id, span_id


def format_traceparent(trace_id: str, span_id: str) -> str:
    """The ``traceparent`` header value for a trace/span pair."""
    return f"00-{trace_id}-{span_id}-01"


@dataclass
class SpanRecord:
    """One finished span: identity, timing, and free-form attributes.

    ``start`` is wall-clock epoch seconds (for logs); ``duration_s``
    comes from ``time.perf_counter`` (for arithmetic).
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    start: float
    duration_s: float
    attrs: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """The JSONL wire shape (attrs nested to avoid collisions)."""
        record = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration_s": self.duration_s,
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record


class RequestTrace:
    """The span collector for one trace.  Thread-safe: handler and
    worker threads append concurrently."""

    __slots__ = ("trace_id", "_spans", "_lock")

    def __init__(self, trace_id: str | None = None) -> None:
        self.trace_id = trace_id or new_trace_id()
        self._spans: list[SpanRecord] = []
        self._lock = threading.Lock()

    def add(self, record: SpanRecord) -> None:
        with self._lock:
            self._spans.append(record)

    def spans(self) -> list[SpanRecord]:
        """A snapshot of the spans recorded so far."""
        with self._lock:
            return list(self._spans)

    def as_dicts(self) -> list[dict]:
        """JSON-ready span records (the slow-request log shape)."""
        return [record.as_dict() for record in self.spans()]

    def duration_of(self, name: str) -> float | None:
        """Total seconds spent in spans called ``name`` (None if the
        span never fired — distinct from a measured 0.0)."""
        matched = [s.duration_s for s in self.spans() if s.name == name]
        if not matched:
            return None
        return sum(matched)


@dataclass(frozen=True)
class TraceContext:
    """An activatable position inside a trace: the collector plus the
    span id that new child spans attach under (None at the root of a
    locally started trace)."""

    trace: RequestTrace
    span_id: str | None = None

    @property
    def trace_id(self) -> str:
        return self.trace.trace_id


_ACTIVE: ContextVar[TraceContext | None] = ContextVar(
    "repro_obs_trace", default=None
)


def current() -> TraceContext | None:
    """The active trace context, or None (tracing disabled)."""
    return _ACTIVE.get()


def current_trace_id() -> str | None:
    """The active trace id, or None."""
    ctx = _ACTIVE.get()
    return ctx.trace_id if ctx is not None else None


def begin_trace(traceparent: str | None = None) -> TraceContext:
    """A new trace context, continuing the caller's trace when a valid
    ``traceparent`` header is given (their span becomes our parent)."""
    parsed = parse_traceparent(traceparent)
    if parsed is None:
        return TraceContext(RequestTrace())
    trace_id, parent_span_id = parsed
    return TraceContext(RequestTrace(trace_id), parent_span_id)


@contextmanager
def activate(ctx: TraceContext | None) -> Iterator[TraceContext | None]:
    """Make ``ctx`` the active context for the block.

    This is the thread-boundary hand-off: capture ``current()`` on the
    submitting thread, pass it with the job, and ``activate`` it on
    the worker thread so spans land in the same `RequestTrace`.
    """
    token = _ACTIVE.set(ctx)
    try:
        yield ctx
    finally:
        _ACTIVE.reset(token)


class _NoopSpan:
    """The shared do-nothing span returned when no trace is active.

    Stateless, so one instance serves every disabled call site — the
    disabled path allocates nothing (the span analogue of `NullSink`).
    """

    __slots__ = ()

    span_id = None
    trace_id = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def annotate(self, **attrs) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Span:
    """A live span: times the block, records a `SpanRecord` on exit,
    and makes itself the parent of spans opened inside the block."""

    __slots__ = (
        "_ctx", "_token", "_start", "name", "attrs",
        "span_id", "parent_id", "start",
    )

    def __init__(self, ctx: TraceContext, name: str, attrs: dict) -> None:
        self._ctx = ctx
        self.name = name
        self.attrs = attrs
        self.span_id = new_span_id()
        self.parent_id = ctx.span_id

    @property
    def trace_id(self) -> str:
        return self._ctx.trace_id

    def annotate(self, **attrs) -> None:
        """Attach attributes discovered mid-span (e.g. cache status)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._token = _ACTIVE.set(
            TraceContext(self._ctx.trace, self.span_id)
        )
        self.start = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        duration = time.perf_counter() - self._start
        _ACTIVE.reset(self._token)
        self._ctx.trace.add(
            SpanRecord(
                name=self.name,
                trace_id=self._ctx.trace_id,
                span_id=self.span_id,
                parent_id=self.parent_id,
                start=self.start,
                duration_s=duration,
                attrs=self.attrs,
            )
        )
        return False


def span(name: str, **attrs):
    """A timed span under the active trace (or the shared no-op).

    Exceptions propagate but the span is still recorded — aborted work
    is work too, and a slow-request capture of a failing request is
    exactly when the timing matters.
    """
    ctx = _ACTIVE.get()
    if ctx is None:
        return NOOP_SPAN
    return Span(ctx, name, attrs)


def record_span(name: str, duration_s: float, **attrs) -> SpanRecord | None:
    """Record an already-measured duration as a span (e.g. queue wait,
    whose start and end happen on different threads).  No-op without
    an active trace."""
    ctx = _ACTIVE.get()
    if ctx is None:
        return None
    record = SpanRecord(
        name=name,
        trace_id=ctx.trace_id,
        span_id=new_span_id(),
        parent_id=ctx.span_id,
        start=time.time() - duration_s,
        duration_s=duration_s,
        attrs=attrs,
    )
    ctx.trace.add(record)
    return record
