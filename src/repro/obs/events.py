"""Typed trace events.

Every observable transition in the system is one frozen dataclass with
a class-level ``kind`` tag (dotted, ``component.action``).  Events are
plain data: producers construct them only when their sink is enabled,
sinks decide what to do with them, and ``as_dict()`` gives the stable
JSON-serializable schema documented in docs/OBSERVABILITY.md.

The schema is append-only by convention: later PRs may add event types
or optional fields, but existing field names and ``kind`` tags stay
stable so stored JSONL traces remain comparable across versions.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar


def term_label(term: Any) -> str:
    """A compact, deterministic label for an AST node.

    ``Let``-like nodes (anything with a string ``name`` attribute)
    are labelled ``Kind:name`` so traces show *which* binding or
    variable each transition touches without serializing whole terms.
    """
    kind = type(term).__name__
    name = getattr(term, "name", None)
    if isinstance(name, str):
        return f"{kind}:{name}"
    return kind


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """Base class for all trace events."""

    kind: ClassVar[str] = "event"

    def as_dict(self) -> dict[str, Any]:
        """The stable wire schema: ``{"event": kind, **fields}``."""
        view: dict[str, Any] = {"event": self.kind}
        for field in fields(self):
            view[field.name] = getattr(self, field.name)
        return view


@dataclass(frozen=True, slots=True)
class InterpStep(TraceEvent):
    """One transition of a concrete interpreter (Figures 1-3).

    ``fuel`` is the step budget *remaining after* this transition, so
    the event stream doubles as a work measure: the number of events
    equals the fuel consumed.
    """

    kind: ClassVar[str] = "interp.step"

    interpreter: str
    label: str
    fuel: int


@dataclass(frozen=True, slots=True)
class AnalyzerVisit(TraceEvent):
    """One analyzer rule application (the ``visits`` work measure of
    the Section 6.2 cost experiments)."""

    kind: ClassVar[str] = "analysis.visit"

    analyzer: str
    label: str
    depth: int


@dataclass(frozen=True, slots=True)
class JoinPerformed(TraceEvent):
    """Two abstract answers were merged (a conditional's branches, or
    the per-closure answers of an abstract application)."""

    kind: ClassVar[str] = "analysis.join"

    analyzer: str
    site: str


@dataclass(frozen=True, slots=True)
class StoreWidened(TraceEvent):
    """A store binding strictly grew past an existing non-bottom value
    (the finite-height analogue of a widening step)."""

    kind: ClassVar[str] = "analysis.widening"

    analyzer: str
    variable: str
    store_size: int


@dataclass(frozen=True, slots=True)
class LoopDetected(TraceEvent):
    """A Section 4.4 loop cut: a ``(term, store)`` judgment reappeared
    on the active derivation path and the least precise value was
    returned."""

    kind: ClassVar[str] = "analysis.loop"

    analyzer: str
    label: str


@dataclass(frozen=True, slots=True)
class BudgetAborted(TraceEvent):
    """The analysis exceeded its work budget and is about to raise
    `repro.analysis.BudgetExceeded`."""

    kind: ClassVar[str] = "analysis.budget_abort"

    analyzer: str
    budget: int
    visits: int


@dataclass(frozen=True, slots=True)
class CacheHit(TraceEvent):
    """A component short-circuited because a stored result already
    covered the incoming work (e.g. an MFP edge delivery that left the
    destination facts unchanged)."""

    kind: ClassVar[str] = "cache.hit"

    component: str
    key: str


@dataclass(frozen=True, slots=True)
class LintFired(TraceEvent):
    """One diagnostic produced by a `repro.lint` pass.

    ``analyzer`` is empty for syntactic (``S1xx``) diagnostics, which
    hold regardless of analysis; semantic (``L0xx``) diagnostics carry
    the analyzer whose facts proved them.
    """

    kind: ClassVar[str] = "lint.fired"

    code: str
    severity: str
    subject: str
    analyzer: str


@dataclass(frozen=True, slots=True)
class SolverIteration(TraceEvent):
    """One worklist pop (MFP) or path step (MOP) of the classical
    solvers in :mod:`repro.dataflow`."""

    kind: ClassVar[str] = "dataflow.iteration"

    solver: str
    point: str
    pending: int
