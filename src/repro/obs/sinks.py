"""Trace sinks: where events go.

The `Sink` protocol is intentionally tiny — a boolean ``enabled`` and
an ``emit`` method.  Producers are expected to hoist the check::

    emit = sink.emit if sink.enabled else None
    ...
    if emit is not None:
        emit(InterpStep(...))

so the disabled path (the `NullSink` default) constructs no event
objects at all; the test suite asserts that analyzer results are
identical with tracing off.
"""

from __future__ import annotations

import json
from collections import Counter as _Counter
from pathlib import Path
from typing import IO, Iterable, Iterator, Protocol, runtime_checkable

from repro.obs.events import TraceEvent


@runtime_checkable
class Sink(Protocol):
    """Anything that can receive trace events."""

    enabled: bool

    def emit(self, event: TraceEvent) -> None:
        """Record one event."""
        ...

    def close(self) -> None:
        """Flush and release resources (no-op for most sinks)."""
        ...


class NullSink:
    """The zero-overhead default: drops everything.

    ``enabled`` is False, so well-behaved producers never even build
    the event objects.  ``emit`` still exists (and does nothing) for
    callers that don't hoist the check.
    """

    enabled = False

    def emit(self, event: TraceEvent) -> None:
        pass

    def close(self) -> None:
        pass


#: The shared disabled sink; producers default to this.
NULL_SINK = NullSink()


class RecordingSink:
    """An in-memory sink for tests and ad-hoc inspection."""

    enabled = True

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def by_kind(self, kind: str) -> list[TraceEvent]:
        """Events whose ``kind`` tag equals ``kind``."""
        return [event for event in self.events if event.kind == kind]

    def counts(self) -> dict[str, int]:
        """Event counts per kind."""
        return dict(_Counter(event.kind for event in self.events))

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()


class JsonlSink:
    """Writes one JSON object per event to a file or stream.

    Each line is the event's ``as_dict()`` plus a monotonically
    increasing ``seq`` number, so interleaved producers stay ordered
    and golden traces can be diffed line by line.
    """

    enabled = True

    def __init__(self, target: "str | Path | IO[str]") -> None:
        if isinstance(target, (str, Path)):
            self._handle: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self._seq = 0

    def emit(self, event: TraceEvent) -> None:
        record = event.as_dict()
        record["seq"] = self._seq
        self._seq += 1
        self._handle.write(json.dumps(record, ensure_ascii=False))
        self._handle.write("\n")

    @property
    def emitted(self) -> int:
        """How many events have been written."""
        return self._seq

    def close(self) -> None:
        if self._owns_handle:
            self._handle.close()
        else:
            self._handle.flush()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_jsonl(path: "str | Path") -> Iterable[dict]:
    """Parse a JSONL trace file back into dicts (schema helper for
    tests and tooling)."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)
