"""Structured observability for the reproduction (`repro.obs`).

The paper's empirical question — does CPS make data flow analysis do
*more work* than direct style (Sections 4-6, and the worst-case
duplication of Section 6.2)? — deserves more than a single ``visits``
counter.  This subsystem provides:

- an event model (:mod:`repro.obs.events`): typed `TraceEvent` records
  for interpreter transitions, analyzer rule applications, joins,
  store widenings, loop detections, budget aborts, cache hits, and
  solver iterations;
- pluggable sinks (:mod:`repro.obs.sinks`): `NullSink` (the
  zero-overhead default — producers skip event construction entirely
  when the sink is disabled), `JsonlSink` (one JSON object per line),
  and `RecordingSink` (in-memory, for tests and ad-hoc inspection);
- a metrics registry (:mod:`repro.obs.metrics`): counters, gauges,
  log-bucketed histograms with ``quantile(q)`` tail estimates, and
  `span()` timing contexts built on ``time.perf_counter``, with a
  ``snapshot()`` → dict API and Prometheus text exposition
  (``to_prometheus()``); every instrument is lock-guarded for the
  serve layer's handler threads;
- request-scoped span tracing (:mod:`repro.obs.trace`): a
  `contextvars`-based trace context (W3C-style ``trace_id`` /
  ``span_id`` / parent), a ``span()`` API that is a shared no-op when
  no trace is active, ``activate()`` for carrying a context across
  thread boundaries, and ``traceparent`` header parsing/formatting.

Every interpreter (:mod:`repro.interp`), analyzer
(:mod:`repro.analysis`), and classical solver (:mod:`repro.dataflow`)
accepts a ``trace`` sink (and, where natural, a `Metrics` registry);
the CLI exposes them as ``python -m repro trace`` and ``--stats``.

The cardinal rule: with the default `NullSink`, behaviour and results
are identical to an uninstrumented run — the disabled path constructs
no event objects (the test suite pins this).
"""

from repro.obs.events import (
    AnalyzerVisit,
    BudgetAborted,
    CacheHit,
    InterpStep,
    JoinPerformed,
    LoopDetected,
    SolverIteration,
    StoreWidened,
    TraceEvent,
    term_label,
)
from repro.obs.metrics import Counter, Gauge, Histogram, Metrics
from repro.obs.sinks import (
    NULL_SINK,
    JsonlSink,
    NullSink,
    RecordingSink,
    Sink,
)
from repro.obs.trace import (
    NOOP_SPAN,
    RequestTrace,
    SpanRecord,
    TraceContext,
    activate,
    begin_trace,
    current,
    current_trace_id,
    format_traceparent,
    parse_traceparent,
    record_span,
    span,
)

__all__ = [
    "TraceEvent",
    "InterpStep",
    "AnalyzerVisit",
    "JoinPerformed",
    "StoreWidened",
    "LoopDetected",
    "BudgetAborted",
    "CacheHit",
    "SolverIteration",
    "term_label",
    "Sink",
    "NullSink",
    "NULL_SINK",
    "JsonlSink",
    "RecordingSink",
    "Metrics",
    "Counter",
    "Gauge",
    "Histogram",
    "NOOP_SPAN",
    "RequestTrace",
    "SpanRecord",
    "TraceContext",
    "activate",
    "begin_trace",
    "current",
    "current_trace_id",
    "format_traceparent",
    "parse_traceparent",
    "record_span",
    "span",
]
