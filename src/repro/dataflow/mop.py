"""Path enumeration: the MOP solution.

MOP (meet over all paths; our lattice is join-ordered, so it is a join
here) composes the transfer functions along *every* entry-to-point
path separately and joins only the end results — the same per-path
duplication as the paper's CPS-based analyzers.  Kam & Ullman showed
MOP is uncomputable for arbitrary monotone frameworks with cycles; the
paper's Section 6.2 `loop` argument is that result transplanted to the
CPS analyses.  ANF flow graphs are acyclic, so enumeration terminates —
at worst-case exponential cost in the number of conditionals, the
other face of the same Section 6.2 coin.
"""

from __future__ import annotations

from typing import Hashable

from repro.dataflow.framework import ENTRY, DataflowProblem, Facts


class PathExplosion(Exception):
    """Path enumeration exceeded the budget (the Section 6.2 cost)."""

    def __init__(self, budget: int) -> None:
        self.budget = budget
        super().__init__(f"more than {budget} paths enumerated")


def solve_mop(
    problem: DataflowProblem, max_paths: int = 100_000
) -> dict[str, Facts]:
    """Solve a dataflow problem by explicit path enumeration.

    Args:
        problem: the problem (its flow graph must be acyclic, which
            ANF graphs are).
        max_paths: explosion budget; `PathExplosion` beyond it.

    Returns:
        The join-over-all-paths post-state at every program point.
    """
    facts: dict[str, Facts] = {point: None for point in problem.points}
    entry: Facts = dict(problem.entry_facts)
    facts[ENTRY] = dict(entry)
    successors: dict[str, list] = {point: [] for point in problem.points}
    for edge in problem.edges:
        successors[edge.src].append(edge)

    paths_seen = 0
    # depth-first enumeration of all paths, carrying the composed facts
    stack: list[tuple[str, Facts]] = [(ENTRY, entry)]
    while stack:
        point, carried = stack.pop()
        outgoing = successors[point]
        if not outgoing:
            paths_seen += 1
            if paths_seen > max_paths:
                raise PathExplosion(max_paths)
            continue
        for edge in outgoing:
            delivered = edge.transfer(carried)
            if delivered is None:
                continue  # infeasible path
            facts[edge.dst] = problem.join_facts(facts[edge.dst], delivered)
            stack.append((edge.dst, delivered))
    return facts


def mop_value(
    problem: DataflowProblem, solution: dict[str, Facts], name: str
) -> Hashable:
    """The abstract value of ``name`` at the program's exit."""
    exit_facts = solution[problem.exit_point]
    if exit_facts is None:
        return problem.domain.bottom
    return exit_facts.get(name, problem.domain.bottom)
