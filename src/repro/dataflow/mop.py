"""Path enumeration: the MOP solution.

MOP (meet over all paths; our lattice is join-ordered, so it is a join
here) composes the transfer functions along *every* entry-to-point
path separately and joins only the end results — the same per-path
duplication as the paper's CPS-based analyzers.  Kam & Ullman showed
MOP is uncomputable for arbitrary monotone frameworks with cycles; the
paper's Section 6.2 `loop` argument is that result transplanted to the
CPS analyses.  ANF flow graphs are acyclic, so enumeration terminates —
at worst-case exponential cost in the number of conditionals, the
other face of the same Section 6.2 coin.
"""

from __future__ import annotations

from typing import Hashable

from repro.dataflow.framework import ENTRY, DataflowProblem, Facts
from repro.obs.events import SolverIteration
from repro.obs.metrics import Metrics
from repro.obs.sinks import NULL_SINK, Sink


class PathExplosion(Exception):
    """Path enumeration exceeded the budget (the Section 6.2 cost)."""

    def __init__(self, budget: int) -> None:
        self.budget = budget
        super().__init__(f"more than {budget} paths enumerated")


def solve_mop(
    problem: DataflowProblem,
    max_paths: int = 100_000,
    trace: Sink = NULL_SINK,
    metrics: Metrics | None = None,
) -> dict[str, Facts]:
    """Solve a dataflow problem by explicit path enumeration.

    Args:
        problem: the problem (its flow graph must be acyclic, which
            ANF graphs are).
        max_paths: explosion budget; `PathExplosion` beyond it.
        trace: optional `repro.obs` sink; one ``dataflow.iteration``
            event per path step.
        metrics: optional registry; records ``mop.steps``,
            ``mop.paths``, ``mop.joins``, ``mop.infeasible`` counters
            and the ``mop.stack_depth`` high-water gauge — the
            Section 6.2 duplication cost made directly comparable with
            the MFP counters.

    Returns:
        The join-over-all-paths post-state at every program point.
    """
    emit = trace.emit if trace.enabled else None
    facts: dict[str, Facts] = {point: None for point in problem.points}
    entry: Facts = dict(problem.entry_facts)
    facts[ENTRY] = dict(entry)
    successors: dict[str, list] = {point: [] for point in problem.points}
    for edge in problem.edges:
        successors[edge.src].append(edge)

    paths_seen = steps = joins = infeasible = max_stack = 0
    # depth-first enumeration of all paths, carrying the composed facts
    stack: list[tuple[str, Facts]] = [(ENTRY, entry)]
    while stack:
        if len(stack) > max_stack:
            max_stack = len(stack)
        point, carried = stack.pop()
        steps += 1
        if emit is not None:
            emit(SolverIteration("mop", point, len(stack)))
        outgoing = successors[point]
        if not outgoing:
            paths_seen += 1
            if paths_seen > max_paths:
                raise PathExplosion(max_paths)
            continue
        for edge in outgoing:
            delivered = edge.transfer(carried)
            if delivered is None:
                infeasible += 1
                continue  # infeasible path
            facts[edge.dst] = problem.join_facts(facts[edge.dst], delivered)
            joins += 1
            stack.append((edge.dst, delivered))
    if metrics is not None:
        metrics.counter("mop.steps").inc(steps)
        metrics.counter("mop.paths").inc(paths_seen)
        metrics.counter("mop.joins").inc(joins)
        metrics.counter("mop.infeasible").inc(infeasible)
        metrics.gauge("mop.stack_depth").set_max(max_stack)
    return facts


def mop_value(
    problem: DataflowProblem, solution: dict[str, Facts], name: str
) -> Hashable:
    """The abstract value of ``name`` at the program's exit."""
    exit_facts = solution[problem.exit_point]
    if exit_facts is None:
        return problem.domain.bottom
    return exit_facts.get(name, problem.domain.bottom)
