"""The dataflow framework: points, facts, and edge transfer functions.

A *fact table* maps variables to abstract numbers from a `NumDomain`
(``None`` represents the unreachable bottom table).  Each edge of the
flow graph carries a transfer function from the source point's
post-state to the destination point's post-state; all semantics lives
on edges, so MFP and MOP share one problem description.

The framework is intraprocedural and first-order: procedure-call
results are approximated by ⊤ unless the operator is syntactically
``add1``/``sub1`` (the interpreter-derived analyzers of
:mod:`repro.analysis` are the higher-order story; this module exists
to connect the paper to the classical Kam–Ullman/Nielson setting it
cites).  ANF flow graphs are acyclic, which keeps MOP decidable —
exactly the boundary Section 6.2's ``loop`` argument draws.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Optional

from repro.anf.validate import validate_anf
from repro.domains.protocol import NumDomain
from repro.lang.ast import (
    App,
    If0,
    Lam,
    Let,
    Loop,
    Num,
    Prim,
    PrimApp,
    Term,
    Var,
    is_value,
)

#: The synthetic entry point of a problem.
ENTRY = "<entry>"

#: A fact table: variable -> abstract number.  None = unreachable.
Facts = Optional[dict[str, Hashable]]

#: An edge transfer function.
Transfer = Callable[[Facts], Facts]


@dataclass(frozen=True)
class Edge:
    """A flow edge with its transfer function and a display label."""

    src: str
    dst: str
    label: str
    transfer: Transfer = field(compare=False)


@dataclass(frozen=True)
class DataflowProblem:
    """A dataflow problem instance over one program."""

    domain: NumDomain
    points: tuple[str, ...]
    edges: tuple[Edge, ...]
    #: The program's result point (the tail value is read here).
    exit_point: str
    #: Facts assumed at ENTRY (free variables, usually ⊤).
    entry_facts: dict[str, Hashable]

    def in_edges(self, point: str) -> list[Edge]:
        """Edges arriving at ``point``."""
        return [e for e in self.edges if e.dst == point]

    def out_edges(self, point: str) -> list[Edge]:
        """Edges leaving ``point``."""
        return [e for e in self.edges if e.src == point]

    def join_facts(self, left: Facts, right: Facts) -> Facts:
        """Pointwise join; None (unreachable) is the identity."""
        if left is None:
            return None if right is None else dict(right)
        if right is None:
            return dict(left)
        joined = dict(left)
        for name, value in right.items():
            existing = joined.get(name)
            joined[name] = (
                value
                if existing is None
                else self.domain.join(existing, value)
            )
        return joined

    def facts_leq(self, left: Facts, right: Facts) -> bool:
        """Pointwise order (missing entries are bottom)."""
        if left is None:
            return True
        if right is None:
            return False
        for name, value in left.items():
            other = right.get(name)
            if other is None:
                if not self.domain.is_bottom(value):
                    return False
            elif not self.domain.leq(value, other):
                return False
        return True


class _Builder:
    def __init__(self, domain: NumDomain, refine_tests: bool) -> None:
        self.domain = domain
        self.refine_tests = refine_tests
        self.points: list[str] = [ENTRY]
        self.edges: list[Edge] = []

    def add_point(self, name: str) -> None:
        if name not in self.points:
            self.points.append(name)

    def add_edge(self, src: str, dst: str, label: str, fn: Transfer) -> None:
        self.edges.append(Edge(src, dst, label, fn))

    # ------------------------------------------------------------------
    # Value and transfer construction
    # ------------------------------------------------------------------

    def eval_value(self, value: Term, facts: dict) -> Hashable:
        """The abstract number of a syntactic value under ``facts``."""
        domain = self.domain
        match value:
            case Num(n):
                return domain.const(n)
            case Var(name):
                return facts.get(name, domain.bottom)
            case Prim(_) | Lam(_, _):
                return domain.bottom  # not a number
        raise TypeError(f"not a syntactic value: {value!r}")

    def assign(self, name: str, rhs: Term) -> Transfer:
        """Transfer assigning the abstract value of ``rhs`` to ``name``."""
        domain = self.domain

        def run(facts: Facts) -> Facts:
            if facts is None:
                return None
            out = dict(facts)
            if is_value(rhs):
                out[name] = self.eval_value(rhs, facts)
            elif isinstance(rhs, PrimApp):
                first, second = rhs.args
                out[name] = domain.binop(
                    rhs.op,
                    self.eval_value(first, facts),
                    self.eval_value(second, facts),
                )
            elif isinstance(rhs, App):
                if isinstance(rhs.fun, Prim):
                    operand = self.eval_value(rhs.arg, facts)
                    out[name] = (
                        domain.add1(operand)
                        if rhs.fun.name == "add1"
                        else domain.sub1(operand)
                    )
                else:
                    out[name] = domain.top  # unknown call result
            elif isinstance(rhs, Loop):
                out[name] = domain.iota
            else:
                raise TypeError(f"unsupported right-hand side: {rhs!r}")
            return out

        return run

    def assign_value(self, name: str, tail: Term) -> Transfer:
        """Transfer binding a branch's tail value to the join point."""
        return self.assign(name, tail)

    def refine(self, test: Term, want_zero: bool) -> Transfer:
        """Branch-edge refinement: on the then-edge the test is 0."""
        domain = self.domain

        def run(facts: Facts) -> Facts:
            if facts is None:
                return None
            value = self.eval_value(test, facts) if is_value(test) else None
            if value is not None:
                feasible = (
                    domain.may_be_zero(value)
                    if want_zero
                    else domain.may_be_nonzero(value)
                )
                if not feasible:
                    return None  # infeasible edge
            if not self.refine_tests:
                return dict(facts)
            out = dict(facts)
            if want_zero and isinstance(test, Var):
                out[test.name] = domain.const(0)
            return out

        return run

    @staticmethod
    def compose(first: Transfer, second: Transfer) -> Transfer:
        def run(facts: Facts) -> Facts:
            return second(first(facts))

        return run

    @staticmethod
    def identity(facts: Facts) -> Facts:
        return None if facts is None else dict(facts)

    # ------------------------------------------------------------------
    # Spine walking
    # ------------------------------------------------------------------

    def spine(self, term: Term, prev: str, incoming: Transfer, label: str) -> tuple[str, Term]:
        """Lay out a let-spine; returns (last point, tail value)."""
        while isinstance(term, Let):
            point = term.name
            self.add_point(point)
            rhs = term.rhs
            if isinstance(rhs, If0):
                then_edge = self.compose(
                    incoming, self.refine(rhs.test, want_zero=True)
                )
                else_edge = self.compose(
                    incoming, self.refine(rhs.test, want_zero=False)
                )
                t_last, t_tail = self._branch(
                    rhs.then, prev, then_edge, f"{label}/then"
                )
                e_last, e_tail = self._branch(
                    rhs.orelse, prev, else_edge, f"{label}/else"
                )
                self.add_edge(
                    t_last, point, "join", self.assign_value(point, t_tail)
                )
                self.add_edge(
                    e_last, point, "join", self.assign_value(point, e_tail)
                )
            else:
                self.add_edge(
                    prev,
                    point,
                    label,
                    self.compose(incoming, self.assign(point, rhs)),
                )
            prev, incoming, label, term = point, self.identity, "seq", term.body
        return prev, term

    def _branch(
        self, branch: Term, prev: str, incoming: Transfer, label: str
    ) -> tuple[str, Term]:
        """A conditional branch: a sub-spine (possibly empty)."""
        if not isinstance(branch, Let):
            # bare-value branch: the fork point is also the last point;
            # stash the refinement into the pending transfer by adding
            # a synthetic pass-through point
            synthetic = f"<{label}:{len(self.points)}>"
            self.add_point(synthetic)
            self.add_edge(prev, synthetic, label, incoming)
            return synthetic, branch
        return self.spine(branch, prev, incoming, label)


def build_problem(
    term: Term,
    domain: NumDomain,
    entry_facts: dict[str, Hashable] | None = None,
    refine_tests: bool = False,
    check: bool = True,
) -> DataflowProblem:
    """Build the dataflow problem of a restricted-subset program.

    Args:
        term: the program (A-normal form, unique binders).
        domain: the abstract number domain.
        entry_facts: assumptions for free variables (default: none).
        refine_tests: propagate ``test = 0`` along then-edges
            (conditional-constant-propagation style; off = classic).
        check: validate the input program.
    """
    if check:
        validate_anf(term)
    builder = _Builder(domain, refine_tests)
    last, tail = builder.spine(term, ENTRY, builder.identity, "seq")
    # materialize the program result as a synthetic point
    result_point = "<result>"
    builder.add_point(result_point)
    builder.add_edge(
        last, result_point, "seq", builder.assign_value(result_point, tail)
    )
    return DataflowProblem(
        domain=domain,
        points=tuple(builder.points),
        edges=tuple(builder.edges),
        exit_point=result_point,
        entry_facts=dict(entry_facts) if entry_facts else {},
    )
