"""Kildall's worklist algorithm: the MFP solution.

MFP (maximum fixed point) propagates facts along edges and *joins at
every merge point* before continuing — the same single-merge behaviour
as the paper's direct analyzer (Figure 4).  On distributive frameworks
MFP coincides with MOP (Kam & Ullman); on non-distributive ones such
as constant propagation it is strictly coarser whenever paths carry
correlated facts.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from repro.dataflow.framework import ENTRY, DataflowProblem, Facts
from repro.obs.events import CacheHit, SolverIteration
from repro.obs.metrics import Metrics
from repro.obs.sinks import NULL_SINK, Sink
from repro.perf import JoinMemo


def solve_mfp(
    problem: DataflowProblem,
    trace: Sink = NULL_SINK,
    metrics: Metrics | None = None,
    cache: bool = False,
) -> dict[str, Facts]:
    """Solve a dataflow problem by worklist iteration.

    Args:
        problem: the dataflow problem to solve.
        trace: optional `repro.obs` sink; one ``dataflow.iteration``
            event per worklist pop, plus a ``cache.hit`` event for
            every edge delivery that left the destination unchanged.
        metrics: optional registry; records ``mfp.iterations``,
            ``mfp.edges_delivered``, ``mfp.joins``, ``mfp.cache_hits``
            counters and the ``mfp.worklist_depth`` high-water gauge.
        cache: memoize ``problem.join_facts`` on canonicalized fact
            tables (`repro.perf.JoinMemo`) — the solution is identical,
            repeated joins of the same pair are absorbed; adds
            ``perf.mfp.join_memo_hits`` / ``_misses`` metrics.

    Returns:
        The post-state fact table at every program point (None for
        unreachable points).
    """
    emit = trace.emit if trace.enabled else None
    join_facts = problem.join_facts
    join_memo: JoinMemo | None = None
    if cache:
        join_memo = JoinMemo(
            join_facts,
            canon_key=lambda facts: tuple(sorted(facts.items())),
        )
        join_facts = join_memo
    facts: dict[str, Facts] = {point: None for point in problem.points}
    facts[ENTRY] = dict(problem.entry_facts)
    successors: dict[str, list] = {point: [] for point in problem.points}
    for edge in problem.edges:
        successors[edge.src].append(edge)

    iterations = deliveries = joins = hits = max_pending = 0
    worklist: deque[str] = deque([ENTRY])
    while worklist:
        if len(worklist) > max_pending:
            max_pending = len(worklist)
        point = worklist.popleft()
        iterations += 1
        if emit is not None:
            emit(SolverIteration("mfp", point, len(worklist)))
        current = facts[point]
        for edge in successors[point]:
            delivered = edge.transfer(current)
            deliveries += 1
            joined = join_facts(facts[edge.dst], delivered)
            joins += 1
            if joined != facts[edge.dst]:
                facts[edge.dst] = joined
                worklist.append(edge.dst)
            else:
                # The stored facts already cover the delivery — the
                # fixpoint cache absorbed this edge.
                hits += 1
                if emit is not None:
                    emit(CacheHit("mfp", edge.dst))
    if metrics is not None:
        metrics.counter("mfp.iterations").inc(iterations)
        metrics.counter("mfp.edges_delivered").inc(deliveries)
        metrics.counter("mfp.joins").inc(joins)
        metrics.counter("mfp.cache_hits").inc(hits)
        metrics.gauge("mfp.worklist_depth").set_max(max_pending)
        if join_memo is not None:
            metrics.counter("perf.mfp.join_memo_hits").inc(join_memo.hits)
            metrics.counter("perf.mfp.join_memo_misses").inc(
                join_memo.misses
            )
    return facts


def mfp_value(
    problem: DataflowProblem, solution: dict[str, Facts], name: str
) -> Hashable:
    """The abstract value of ``name`` at the program's exit."""
    exit_facts = solution[problem.exit_point]
    if exit_facts is None:
        return problem.domain.bottom
    return exit_facts.get(name, problem.domain.bottom)
