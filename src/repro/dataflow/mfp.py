"""Kildall's worklist algorithm: the MFP solution.

MFP (maximum fixed point) propagates facts along edges and *joins at
every merge point* before continuing — the same single-merge behaviour
as the paper's direct analyzer (Figure 4).  On distributive frameworks
MFP coincides with MOP (Kam & Ullman); on non-distributive ones such
as constant propagation it is strictly coarser whenever paths carry
correlated facts.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from repro.dataflow.framework import ENTRY, DataflowProblem, Facts


def solve_mfp(problem: DataflowProblem) -> dict[str, Facts]:
    """Solve a dataflow problem by worklist iteration.

    Returns:
        The post-state fact table at every program point (None for
        unreachable points).
    """
    facts: dict[str, Facts] = {point: None for point in problem.points}
    facts[ENTRY] = dict(problem.entry_facts)
    successors: dict[str, list] = {point: [] for point in problem.points}
    for edge in problem.edges:
        successors[edge.src].append(edge)

    worklist: deque[str] = deque([ENTRY])
    while worklist:
        point = worklist.popleft()
        current = facts[point]
        for edge in successors[point]:
            delivered = edge.transfer(current)
            joined = problem.join_facts(facts[edge.dst], delivered)
            if joined != facts[edge.dst]:
                facts[edge.dst] = joined
                worklist.append(edge.dst)
    return facts


def mfp_value(
    problem: DataflowProblem, solution: dict[str, Facts], name: str
) -> Hashable:
    """The abstract value of ``name`` at the program's exit."""
    exit_facts = solution[problem.exit_point]
    if exit_facts is None:
        return problem.domain.bottom
    return exit_facts.get(name, problem.domain.bottom)
