"""Classical dataflow frameworks: MFP and MOP.

The paper situates its results in the Kam–Ullman / Nielson tradition
(Section 6.2): "Nielson proved that, for a small imperative language,
the semantic-CPS analysis computes the MOP (meet over all paths)
solution and the direct analysis computes the less precise MFP
(maximum fixed point) solution."  This package implements that
tradition directly, over the flow graphs of A-normal form programs:

- :mod:`repro.dataflow.framework` — program points, edge transfer
  functions, and the graph builder;
- :mod:`repro.dataflow.mfp` — Kildall's worklist algorithm (the MFP
  solution);
- :mod:`repro.dataflow.mop` — explicit path enumeration (the MOP
  solution; decidable here because ANF flow graphs are acyclic — the
  general case is exactly what Section 6.2's `loop` argument shows to
  be undecidable).

The tests connect the two worlds: MOP ⊒ MFP always, strictly on the
paper's Theorem 5.2 witness (where the interpreter-derived analyzers
show the same split: semantic-CPS = MOP-like, direct = MFP-like), and
MOP = MFP for distributive frameworks.
"""

from repro.dataflow.framework import (
    DataflowProblem,
    ENTRY,
    Facts,
    build_problem,
)
from repro.dataflow.mfp import solve_mfp
from repro.dataflow.mop import PathExplosion, solve_mop

__all__ = [
    "DataflowProblem",
    "ENTRY",
    "Facts",
    "build_problem",
    "solve_mfp",
    "solve_mop",
    "PathExplosion",
]
