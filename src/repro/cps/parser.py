"""An s-expression parser for cps(A) concrete syntax.

Reads back exactly what :func:`repro.cps.pretty.cps_pretty` prints
(the round trip is property-tested), so cps(A) programs can be stored
and edited as text like source programs::

    P ::= (k W)
        | (let (x W) P)
        | (let (x (op W W)) P)
        | (let (k (lambda (x) P)) (if0 W P P))
        | (W W (lambda (x) P))
        | (loop (lambda (x) P))
    W ::= n | x | add1k | sub1k | (lambda (x k) P)

Continuation variables are recognized by the ``k/`` namespace prefix
the transformation uses.
"""

from __future__ import annotations

from repro.cps.ast import (
    CApp,
    CIf0,
    CLam,
    CLet,
    CLoop,
    CNum,
    CPrim,
    CPrimLet,
    CTerm,
    CValue,
    CVar,
    KApp,
    KLam,
    CPS_PRIMS,
)
from repro.lang.ast import SECOND_CLASS_OPS
from repro.lang.errors import ParseError
from repro.lang.parser import Atom, Datum, SList, read


def is_kvar(name: str) -> bool:
    """True when ``name`` belongs to the continuation namespace."""
    return name.startswith("k/")


def _is_number(text: str) -> bool:
    body = text[1:] if text[:1] in "+-" else text
    return body.isdigit() and bool(body)


def parse_cps(source: str) -> CTerm:
    """Parse a serious cps(A) term from concrete syntax."""
    return _parse_term(read(source))


def parse_cps_value(source: str) -> CValue:
    """Parse a trivial (W) cps(A) term from concrete syntax."""
    return _parse_value(read(source))


def _parse_value(datum: Datum) -> CValue:
    if isinstance(datum, Atom):
        text = datum.text
        if _is_number(text):
            return CNum(int(text))
        if text in CPS_PRIMS:
            return CPrim(text)
        if is_kvar(text):
            raise ParseError(
                f"continuation variable {text!r} is not a value",
                datum.line,
                datum.column,
            )
        return CVar(text)
    head = datum.items[0] if datum.items else None
    if isinstance(head, Atom) and head.text == "lambda":
        return _parse_clam(datum)
    raise ParseError("expected a cps(A) value", datum.line, datum.column)


def _parse_params(datum: SList, count: int) -> list[str]:
    if len(datum.items) != 3:
        raise ParseError("malformed lambda", datum.line, datum.column)
    params = datum.items[1]
    if not isinstance(params, SList) or len(params.items) != count:
        raise ParseError(
            f"lambda takes a {count}-parameter list here",
            datum.line,
            datum.column,
        )
    names = []
    for item in params.items:
        if not isinstance(item, Atom) or _is_number(item.text):
            raise ParseError(
                "expected a parameter name", datum.line, datum.column
            )
        names.append(item.text)
    return names


def _parse_clam(datum: SList) -> CLam:
    param, kparam = _parse_params(datum, 2)
    if is_kvar(param) or not is_kvar(kparam):
        raise ParseError(
            "user lambda takes (x k/...) parameters",
            datum.line,
            datum.column,
        )
    return CLam(param, kparam, _parse_term(datum.items[2]))


def _parse_klam(datum: Datum) -> KLam:
    if not (
        isinstance(datum, SList)
        and datum.items
        and isinstance(datum.items[0], Atom)
        and datum.items[0].text == "lambda"
    ):
        raise ParseError(
            "expected a continuation lambda",
            datum.line,
            datum.column,
        )
    (param,) = _parse_params(datum, 1)
    if is_kvar(param):
        raise ParseError(
            "continuation lambda binds a source variable",
            datum.line,
            datum.column,
        )
    return KLam(param, _parse_term(datum.items[2]))


def _parse_let(datum: SList) -> CTerm:
    if len(datum.items) != 3:
        raise ParseError("malformed let", datum.line, datum.column)
    binding = datum.items[1]
    if not isinstance(binding, SList) or len(binding.items) != 2:
        raise ParseError(
            "let takes a binding pair", datum.line, datum.column
        )
    name_datum, value_datum = binding.items
    if not isinstance(name_datum, Atom) or _is_number(name_datum.text):
        raise ParseError(
            "expected a bound name", datum.line, datum.column
        )
    name = name_datum.text
    if is_kvar(name):
        # (let (k (lambda (x) P)) (if0 W P P))
        kont = _parse_klam(value_datum)
        body = datum.items[2]
        if not (
            isinstance(body, SList)
            and len(body.items) == 4
            and isinstance(body.items[0], Atom)
            and body.items[0].text == "if0"
        ):
            raise ParseError(
                "a continuation binding must scope an if0",
                datum.line,
                datum.column,
            )
        return CIf0(
            name,
            kont,
            _parse_value(body.items[1]),
            _parse_term(body.items[2]),
            _parse_term(body.items[3]),
        )
    if (
        isinstance(value_datum, SList)
        and value_datum.items
        and isinstance(value_datum.items[0], Atom)
        and value_datum.items[0].text in SECOND_CLASS_OPS
    ):
        op = value_datum.items[0].text
        arity = SECOND_CLASS_OPS[op]
        if len(value_datum.items) != arity + 1:
            raise ParseError(
                f"operator {op!r} takes {arity} arguments",
                value_datum.line,
                value_datum.column,
            )
        args = tuple(_parse_value(d) for d in value_datum.items[1:])
        return CPrimLet(name, op, args, _parse_term(datum.items[2]))
    return CLet(name, _parse_value(value_datum), _parse_term(datum.items[2]))


def _parse_term(datum: Datum) -> CTerm:
    if isinstance(datum, Atom):
        raise ParseError(
            f"a serious term cannot be the atom {datum.text!r}",
            datum.line,
            datum.column,
        )
    if not datum.items:
        raise ParseError("empty term ()", datum.line, datum.column)
    head = datum.items[0]
    if isinstance(head, Atom):
        if head.text == "let":
            return _parse_let(datum)
        if head.text == "loop":
            if len(datum.items) != 2:
                raise ParseError(
                    "loop takes one continuation", datum.line, datum.column
                )
            return CLoop(_parse_klam(datum.items[1]))
        if is_kvar(head.text):
            if len(datum.items) != 2:
                raise ParseError(
                    "a return takes one value", datum.line, datum.column
                )
            return KApp(head.text, _parse_value(datum.items[1]))
    if len(datum.items) == 3:
        return CApp(
            _parse_value(datum.items[0]),
            _parse_value(datum.items[1]),
            _parse_klam(datum.items[2]),
        )
    raise ParseError(
        "expected a cps(A) serious term", datum.line, datum.column
    )
