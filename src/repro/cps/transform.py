"""The syntactic CPS transformation ``F``/``V`` (paper Definition 3.2).

The transformation maps A-normal form terms to cps(A)::

    F_k[V]                           = (k V[V])
    F_k[(let (x V) M)]               = (let (x V[V]) F_k[M])
    F_k[(let (x (V1 V2)) M)]         = (V[V1] V[V2] (lambda (x) F_k[M]))
    F_k[(let (x (if0 V0 M1 M2)) M)]  = (let (k' (lambda (x) F_k[M]))
                                          (if0 V[V0] F_k'[M1] F_k'[M2]))

    V[n] = n   V[x] = x   V[add1] = add1k   V[sub1] = sub1k
    V[(lambda (x) M)] = (lambda (x k_x) F_{k_x}[M])

plus the two language extensions::

    F_k[(let (x (op V1 V2)) M)] = (let (x (op V[V1] V[V2])) F_k[M])
    F_k[(let (x (loop)) M)]     = (loop (lambda (x) F_k[M]))

Continuation variables are derived deterministically from binder
names (``k/x`` for binder ``x``), so the transformation is a pure
function of its argument.  This matters for the delta maps of
Sections 3.3 and 5: the CPS image of a closure computed in isolation
coincides with the closure the transformed whole program creates.
Because binders are unique in the restricted subset, derived
continuation variables are unique too, and the ``k/`` prefix keeps
``KVars`` disjoint from source ``Vars``.
"""

from __future__ import annotations

from repro.anf.validate import validate_anf
from repro.cps.ast import (
    CApp,
    CIf0,
    CLam,
    CLet,
    CLoop,
    CNum,
    CPrim,
    CPrimLet,
    CTerm,
    CValue,
    CVar,
    KApp,
    KLam,
)
from repro.lang.ast import (
    App,
    If0,
    Lam,
    Let,
    Loop,
    Num,
    Prim,
    PrimApp,
    Term,
    Value,
    Var,
    is_value,
)
from repro.lang.errors import SyntaxValidationError

#: The continuation variable of a whole program, bound to ``stop`` in
#: the initial store (paper Lemma 3.3).
TOP_KVAR = "k/halt"


def kvar_for(binder: str) -> str:
    """The continuation variable derived from source binder ``binder``."""
    return f"k/{binder}"


def cps_transform_value(value: Value) -> CValue:
    """The value transformation ``V`` of Definition 3.2."""
    match value:
        case Num(n):
            return CNum(n)
        case Var(name):
            return CVar(name)
        case Prim("add1"):
            return CPrim("add1k")
        case Prim("sub1"):
            return CPrim("sub1k")
        case Lam(param, body):
            kvar = kvar_for(param)
            return CLam(param, kvar, _transform(body, kvar))
    raise SyntaxValidationError(f"not a syntactic value: {value!r}")


def _transform(term: Term, kvar: str) -> CTerm:
    """The term transformation ``F_k`` of Definition 3.2."""
    if is_value(term):
        return KApp(kvar, cps_transform_value(term))
    if not isinstance(term, Let):
        raise SyntaxValidationError(
            f"term is not in the restricted subset: {term!r}"
        )
    name, rhs, body = term.name, term.rhs, term.body
    if is_value(rhs):
        return CLet(name, cps_transform_value(rhs), _transform(body, kvar))
    match rhs:
        case App(fun, arg):
            return CApp(
                cps_transform_value(fun),
                cps_transform_value(arg),
                KLam(name, _transform(body, kvar)),
            )
        case If0(test, then, orelse):
            join_kvar = kvar_for(name)
            return CIf0(
                join_kvar,
                KLam(name, _transform(body, kvar)),
                cps_transform_value(test),
                _transform(then, join_kvar),
                _transform(orelse, join_kvar),
            )
        case PrimApp(op, args):
            return CPrimLet(
                name,
                op,
                tuple(cps_transform_value(a) for a in args),
                _transform(body, kvar),
            )
        case Loop():
            return CLoop(KLam(name, _transform(body, kvar)))
    raise SyntaxValidationError(f"invalid let right-hand side: {rhs!r}")


def cps_transform(term: Term, kvar: str = TOP_KVAR, check: bool = True) -> CTerm:
    """Transform an A-normal form program into cps(A).

    Args:
        term: a program of the restricted subset.
        kvar: the continuation variable of the whole program; callers
            bind it to ``stop`` in the initial environment/store.
        check: validate that ``term`` is in the restricted subset.

    Returns:
        The cps(A) program ``F_kvar[term]``.
    """
    if check:
        validate_anf(term)
    return _transform(term, kvar)
