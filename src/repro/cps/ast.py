"""Abstract syntax of cps(A) (paper Definition 3.2).

The grammar distinguishes *serious terms* ``P`` (the control string)
from *trivial values* ``W``.  Continuation lambdas ``(lambda (x) P)``
are a third syntactic category (`KLam`): they are not values of the
language — they only appear as the continuation argument of a call or
bound to a continuation variable at a conditional — which is exactly
what lets the syntactic-CPS interpreter represent them specially as
``(co x, P, rho)`` records rather than closures.

Extended (as in the source language) with second-class operator
bindings ``(let (x (op W W)) P)`` and the Section 6.2 looping
construct ``(loop (lambda (x) P))``, which passes every natural number
to its continuation and never returns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.lang.ast import SECOND_CLASS_OPS

#: Names of the CPS first-class primitives.
CPS_PRIMS = ("add1k", "sub1k")


@dataclass(frozen=True, slots=True)
class CNum:
    """A numeral ``n``."""

    value: int


@dataclass(frozen=True, slots=True)
class CVar:
    """A (source) variable reference ``x``."""

    name: str


@dataclass(frozen=True, slots=True)
class CPrim:
    """A CPS primitive procedure: ``add1k`` or ``sub1k``."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in CPS_PRIMS:
            raise ValueError(
                f"unknown CPS primitive {self.name!r}; expected one of {CPS_PRIMS}"
            )


@dataclass(frozen=True, slots=True)
class CLam:
    """A user procedure ``(lambda (x k) P)`` taking a value and a
    continuation."""

    param: str
    kparam: str
    body: "CTerm"


@dataclass(frozen=True, slots=True)
class KLam:
    """A continuation lambda ``(lambda (x) P)``.

    Not a value of cps(A): occurs only as the continuation argument of
    a `CApp`, bound at a `CIf0`, or as the receiver of a `CLoop`.
    """

    param: str
    body: "CTerm"


#: Trivial terms W.
CValue = Union[CNum, CVar, CPrim, CLam]

#: Classes in `CValue`, for isinstance checks.
CVALUE_CLASSES = (CNum, CVar, CPrim, CLam)


@dataclass(frozen=True, slots=True)
class KApp:
    """A return ``(k W)``: invoke the continuation bound to ``k``."""

    kvar: str
    value: CValue


@dataclass(frozen=True, slots=True)
class CLet:
    """A binding ``(let (x W) P)``."""

    name: str
    value: CValue
    body: "CTerm"


@dataclass(frozen=True, slots=True)
class CApp:
    """A call ``(W W (lambda (x) P))`` with an explicit continuation."""

    fun: CValue
    arg: CValue
    kont: KLam


@dataclass(frozen=True, slots=True)
class CIf0:
    """A conditional ``(let (k (lambda (x) P)) (if0 W P P))``.

    The join continuation is named once and both branches return
    through it (via ``(k W)`` at their leaves).
    """

    kvar: str
    kont: KLam
    test: CValue
    then: "CTerm"
    orelse: "CTerm"


@dataclass(frozen=True, slots=True)
class CPrimLet:
    """A second-class operator binding ``(let (x (op W W)) P)``."""

    name: str
    op: str
    args: tuple[CValue, ...]
    body: "CTerm"

    def __post_init__(self) -> None:
        arity = SECOND_CLASS_OPS.get(self.op)
        if arity is None:
            raise ValueError(f"unknown operator {self.op!r}")
        if len(self.args) != arity:
            raise ValueError(
                f"operator {self.op!r} takes {arity} arguments, got {len(self.args)}"
            )


@dataclass(frozen=True, slots=True)
class CLoop:
    """The looping construct ``(loop (lambda (x) P))``.

    Concretely it diverges; its collecting semantics passes every
    natural number to the continuation (paper Section 6.2).
    """

    kont: KLam


#: Serious terms P.
CTerm = Union[KApp, CLet, CApp, CIf0, CPrimLet, CLoop]

#: Classes in `CTerm`, for isinstance checks.
CTERM_CLASSES = (KApp, CLet, CApp, CIf0, CPrimLet, CLoop)


def c_value_of(term: object) -> bool:
    """True when ``term`` is a trivial (W) term of cps(A)."""
    return isinstance(term, CVALUE_CLASSES)
