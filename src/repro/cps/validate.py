"""Structural validation for cps(A) terms.

Checks grammar membership, the KVars/Vars disjointness convention, and
scoping of continuation variables (each ``(k W)`` return must refer to
a continuation variable in scope: a `CLam` k-parameter, a `CIf0` join
binding, or the program's top continuation).

Two layers, mirroring :mod:`repro.anf.validate`:

- :func:`cps_violations` collects every problem as a recoverable
  `repro.lang.errors.Violation` (rule keys ``kvar-namespace``,
  ``unbound-continuation``, ``not-in-cps``) for the `repro.lint`
  syntactic passes.
- :func:`validate_cps` keeps the historical raising API as a thin
  wrapper raising a `SyntaxValidationError` for the first violation.
"""

from __future__ import annotations

from typing import Iterator

from repro.cps.ast import (
    CApp,
    CIf0,
    CLam,
    CLet,
    CLoop,
    CNum,
    CPrim,
    CPrimLet,
    CTerm,
    CValue,
    CVar,
    KApp,
    KLam,
    CTERM_CLASSES,
)
from repro.lang.errors import SyntaxValidationError, Violation

#: Rule keys produced by :func:`cps_violations`.
RULE_KVAR_NAMESPACE = "kvar-namespace"
RULE_UNBOUND_CONTINUATION = "unbound-continuation"
RULE_NOT_IN_CPS = "not-in-cps"


def is_cps_term(term: object) -> bool:
    """True when ``term`` is a serious cps(A) term (shallow check)."""
    return isinstance(term, CTERM_CLASSES)


def cps_subterms(term: CTerm) -> Iterator[CTerm | CValue | KLam]:
    """Yield all serious terms, values, and continuation lambdas inside
    ``term``, pre-order."""
    stack: list[CTerm | CValue | KLam] = [term]
    while stack:
        current = stack.pop()
        yield current
        match current:
            case KApp(_, value):
                stack.append(value)
            case CLet(_, value, body):
                stack.extend((body, value))
            case CApp(fun, arg, kont):
                stack.extend((kont, arg, fun))
            case CIf0(_, kont, test, then, orelse):
                stack.extend((orelse, then, test, kont))
            case CPrimLet(_, _, args, body):
                stack.append(body)
                stack.extend(reversed(args))
            case CLoop(kont):
                stack.append(kont)
            case CLam(_, _, body):
                stack.append(body)
            case KLam(_, body):
                stack.append(body)
            case _:
                pass


def cps_violations(
    term: CTerm, top_kvars: frozenset[str] = frozenset()
) -> list[Violation]:
    """Every structural problem keeping ``term`` out of the cps(A)
    image, as recoverable records (empty when the term is valid).

    Args:
        term: the cps(A) program to check.
        top_kvars: continuation variables assumed bound by the initial
            environment (usually ``{TOP_KVAR}``).
    """
    out: list[Violation] = []
    _check(term, top_kvars, set(), out)
    return out


def validate_cps(term: CTerm, top_kvars: frozenset[str] = frozenset()) -> None:
    """Raise `SyntaxValidationError` unless ``term`` is well-formed.

    Thin wrapper over :func:`cps_violations`; the exception carries the
    first violation's rule key and subject.

    Args:
        term: the cps(A) program to check.
        top_kvars: continuation variables assumed bound by the initial
            environment (usually ``{TOP_KVAR}``).
    """
    violations = cps_violations(term, top_kvars)
    if violations:
        raise SyntaxValidationError.from_violation(violations[0])


def _check_value(
    value: CValue,
    kvars: frozenset[str],
    xvars: set[str],
    out: list[Violation],
) -> None:
    match value:
        case CNum() | CPrim():
            return
        case CVar(name):
            if name.startswith("k/"):
                out.append(
                    Violation(
                        RULE_KVAR_NAMESPACE,
                        f"source variable {name!r} uses the continuation "
                        f"namespace",
                        name,
                    )
                )
            return
        case CLam(param, kparam, body):
            if not kparam.startswith("k/"):
                out.append(
                    Violation(
                        RULE_KVAR_NAMESPACE,
                        f"continuation parameter {kparam!r} must use the "
                        f"k/ namespace",
                        kparam,
                    )
                )
            _check(body, frozenset((kparam,)), xvars | {param}, out)
            return
    out.append(
        Violation(RULE_NOT_IN_CPS, f"not a cps(A) value: {value!r}")
    )


def _check(
    term: CTerm,
    kvars: frozenset[str],
    xvars: set[str],
    out: list[Violation],
) -> None:
    match term:
        case KApp(kvar, value):
            if kvar not in kvars:
                out.append(
                    Violation(
                        RULE_UNBOUND_CONTINUATION,
                        f"return to unbound continuation variable {kvar!r}",
                        kvar,
                    )
                )
            _check_value(value, kvars, xvars, out)
        case CLet(name, value, body):
            _check_value(value, kvars, xvars, out)
            _check(body, kvars, xvars | {name}, out)
        case CApp(fun, arg, kont):
            _check_value(fun, kvars, xvars, out)
            _check_value(arg, kvars, xvars, out)
            _check(kont.body, kvars, xvars | {kont.param}, out)
        case CIf0(kvar, kont, test, then, orelse):
            if not kvar.startswith("k/"):
                out.append(
                    Violation(
                        RULE_KVAR_NAMESPACE,
                        f"join continuation {kvar!r} must use the "
                        f"k/ namespace",
                        kvar,
                    )
                )
            _check_value(test, kvars, xvars, out)
            _check(kont.body, kvars, xvars | {kont.param}, out)
            inner = kvars | {kvar}
            _check(then, inner, xvars, out)
            _check(orelse, inner, xvars, out)
        case CPrimLet(name, _, args, body):
            for arg in args:
                _check_value(arg, kvars, xvars, out)
            _check(body, kvars, xvars | {name}, out)
        case CLoop(kont):
            _check(kont.body, kvars, xvars | {kont.param}, out)
        case _:
            out.append(
                Violation(RULE_NOT_IN_CPS, f"not a cps(A) term: {term!r}")
            )
