"""Structural validation for cps(A) terms.

Checks grammar membership, the KVars/Vars disjointness convention, and
scoping of continuation variables (each ``(k W)`` return must refer to
a continuation variable in scope: a `CLam` k-parameter, a `CIf0` join
binding, or the program's top continuation).
"""

from __future__ import annotations

from typing import Iterator

from repro.cps.ast import (
    CApp,
    CIf0,
    CLam,
    CLet,
    CLoop,
    CNum,
    CPrim,
    CPrimLet,
    CTerm,
    CValue,
    CVar,
    KApp,
    KLam,
    CTERM_CLASSES,
)
from repro.lang.errors import SyntaxValidationError


def is_cps_term(term: object) -> bool:
    """True when ``term`` is a serious cps(A) term (shallow check)."""
    return isinstance(term, CTERM_CLASSES)


def cps_subterms(term: CTerm) -> Iterator[CTerm | CValue | KLam]:
    """Yield all serious terms, values, and continuation lambdas inside
    ``term``, pre-order."""
    stack: list[CTerm | CValue | KLam] = [term]
    while stack:
        current = stack.pop()
        yield current
        match current:
            case KApp(_, value):
                stack.append(value)
            case CLet(_, value, body):
                stack.extend((body, value))
            case CApp(fun, arg, kont):
                stack.extend((kont, arg, fun))
            case CIf0(_, kont, test, then, orelse):
                stack.extend((orelse, then, test, kont))
            case CPrimLet(_, _, args, body):
                stack.append(body)
                stack.extend(reversed(args))
            case CLoop(kont):
                stack.append(kont)
            case CLam(_, _, body):
                stack.append(body)
            case KLam(_, body):
                stack.append(body)
            case _:
                pass


def validate_cps(term: CTerm, top_kvars: frozenset[str] = frozenset()) -> None:
    """Raise `SyntaxValidationError` unless ``term`` is well-formed.

    Args:
        term: the cps(A) program to check.
        top_kvars: continuation variables assumed bound by the initial
            environment (usually ``{TOP_KVAR}``).
    """
    _check(term, top_kvars, set())


def _check_value(value: CValue, kvars: frozenset[str], xvars: set[str]) -> None:
    match value:
        case CNum() | CPrim():
            return
        case CVar(name):
            if name.startswith("k/"):
                raise SyntaxValidationError(
                    f"source variable {name!r} uses the continuation namespace"
                )
            return
        case CLam(param, kparam, body):
            if not kparam.startswith("k/"):
                raise SyntaxValidationError(
                    f"continuation parameter {kparam!r} must use the k/ namespace"
                )
            _check(body, frozenset((kparam,)), xvars | {param})
            return
    raise SyntaxValidationError(f"not a cps(A) value: {value!r}")


def _check(term: CTerm, kvars: frozenset[str], xvars: set[str]) -> None:
    match term:
        case KApp(kvar, value):
            if kvar not in kvars:
                raise SyntaxValidationError(
                    f"return to unbound continuation variable {kvar!r}"
                )
            _check_value(value, kvars, xvars)
        case CLet(name, value, body):
            _check_value(value, kvars, xvars)
            _check(body, kvars, xvars | {name})
        case CApp(fun, arg, kont):
            _check_value(fun, kvars, xvars)
            _check_value(arg, kvars, xvars)
            _check(kont.body, kvars, xvars | {kont.param})
        case CIf0(kvar, kont, test, then, orelse):
            if not kvar.startswith("k/"):
                raise SyntaxValidationError(
                    f"join continuation {kvar!r} must use the k/ namespace"
                )
            _check_value(test, kvars, xvars)
            _check(kont.body, kvars, xvars | {kont.param})
            inner = kvars | {kvar}
            _check(then, inner, xvars)
            _check(orelse, inner, xvars)
        case CPrimLet(name, _, args, body):
            for arg in args:
                _check_value(arg, kvars, xvars)
            _check(body, kvars, xvars | {name})
        case CLoop(kont):
            _check(kont.body, kvars, xvars | {kont.param})
        case _:
            raise SyntaxValidationError(f"not a cps(A) term: {term!r}")
