"""The inverse CPS transformation: cps(A) back to direct style.

The paper's companion work ("The Essence of Compiling with
Continuations", PLDI 1993, cited as [7]) shows that CPS compilation
factors through A-normal form: ``F`` is injective, and every program
in its image translates back.  ``uncps`` inverts Definition 3.2
structurally::

    U_k[(k W)]                     = V⁻¹[W]
    U_k[(let (x W) P)]             = (let (x V⁻¹[W]) U_k[P])
    U_k[(W1 W2 (lambda (x) P))]    = (let (x (V⁻¹[W1] V⁻¹[W2])) U_k[P])
    U_k[(let (k' (lambda (x) P))
          (if0 W P1 P2))]          = (let (x (if0 V⁻¹[W] U_k'[P1] U_k'[P2]))
                                        U_k[P])

plus the operator/loop extensions.  On the image of ``F`` the
composition ``uncps . cps_transform`` is the identity (property-tested
on the corpus and random programs); terms outside the image — e.g.
returns to a non-current continuation, which is exactly the shape the
false-return confusion invents — raise `UnCpsError`.
"""

from __future__ import annotations

from repro.cps.ast import (
    CApp,
    CIf0,
    CLam,
    CLet,
    CLoop,
    CNum,
    CPrim,
    CPrimLet,
    CTerm,
    CValue,
    CVar,
    KApp,
)
from repro.cps.transform import TOP_KVAR
from repro.lang.ast import (
    App,
    If0,
    Lam,
    Let,
    Loop,
    Num,
    Prim,
    PrimApp,
    Term,
    Value,
    Var,
)


class UnCpsError(Exception):
    """The term is not in the image of the CPS transformation."""


def uncps_value(value: CValue) -> Value:
    """``V⁻¹``: invert the value transformation."""
    match value:
        case CNum(n):
            return Num(n)
        case CVar(name):
            return Var(name)
        case CPrim("add1k"):
            return Prim("add1")
        case CPrim("sub1k"):
            return Prim("sub1")
        case CLam(param, kparam, body):
            return Lam(param, _uncps(body, kparam))
    raise UnCpsError(f"not a cps(A) value: {value!r}")


def _uncps(term: CTerm, kvar: str) -> Term:
    match term:
        case KApp(target, value):
            if target != kvar:
                raise UnCpsError(
                    f"return to {target!r} where the current continuation "
                    f"is {kvar!r}: not in the image of the transformation"
                )
            return uncps_value(value)
        case CLet(name, value, body):
            return Let(name, uncps_value(value), _uncps(body, kvar))
        case CApp(fun, arg, kont):
            return Let(
                kont.param,
                App(uncps_value(fun), uncps_value(arg)),
                _uncps(kont.body, kvar),
            )
        case CIf0(join_kvar, kont, test, then, orelse):
            return Let(
                kont.param,
                If0(
                    uncps_value(test),
                    _uncps(then, join_kvar),
                    _uncps(orelse, join_kvar),
                ),
                _uncps(kont.body, kvar),
            )
        case CPrimLet(name, op, args, body):
            return Let(
                name,
                PrimApp(op, tuple(uncps_value(a) for a in args)),
                _uncps(body, kvar),
            )
        case CLoop(kont):
            return Let(kont.param, Loop(), _uncps(kont.body, kvar))
    raise UnCpsError(f"not a cps(A) term: {term!r}")


def uncps(term: CTerm, kvar: str = TOP_KVAR) -> Term:
    """Translate a cps(A) program back to the restricted subset.

    Args:
        term: a cps(A) program in the image of ``F_kvar``.
        kvar: the program's top continuation variable.

    Returns:
        The direct-style program ``M`` with ``F_kvar[M] == term``.

    Raises:
        UnCpsError: when ``term`` is not in the transformation's image.
    """
    return _uncps(term, kvar)
