"""Pretty-printer for cps(A) terms (concrete syntax of Definition 3.2)."""

from __future__ import annotations

from repro.cps.ast import (
    CApp,
    CIf0,
    CLam,
    CLet,
    CLoop,
    CNum,
    CPrim,
    CPrimLet,
    CTerm,
    CValue,
    CVar,
    KApp,
    KLam,
)


def cps_pretty(term: CTerm | CValue | KLam, width: int = 72) -> str:
    """Render a cps(A) term as concrete syntax."""
    return _render(term, 0, width)


def _flat(term: CTerm | CValue | KLam) -> str:
    match term:
        case CNum(value):
            return str(value)
        case CVar(name):
            return name
        case CPrim(name):
            return name
        case CLam(param, kparam, body):
            return f"(lambda ({param} {kparam}) {_flat(body)})"
        case KLam(param, body):
            return f"(lambda ({param}) {_flat(body)})"
        case KApp(kvar, value):
            return f"({kvar} {_flat(value)})"
        case CLet(name, value, body):
            return f"(let ({name} {_flat(value)}) {_flat(body)})"
        case CApp(fun, arg, kont):
            return f"({_flat(fun)} {_flat(arg)} {_flat(kont)})"
        case CIf0(kvar, kont, test, then, orelse):
            return (
                f"(let ({kvar} {_flat(kont)}) "
                f"(if0 {_flat(test)} {_flat(then)} {_flat(orelse)}))"
            )
        case CPrimLet(name, op, args, body):
            rendered = " ".join(_flat(a) for a in args)
            return f"(let ({name} ({op} {rendered})) {_flat(body)})"
        case CLoop(kont):
            return f"(loop {_flat(kont)})"
    raise TypeError(f"not a cps(A) term: {term!r}")


def _render(term: CTerm | CValue | KLam, indent: int, width: int) -> str:
    flat = _flat(term)
    if indent + len(flat) <= width:
        return flat
    pad = " " * (indent + 2)
    match term:
        case CLam(param, kparam, body):
            inner = _render(body, indent + 2, width)
            return f"(lambda ({param} {kparam})\n{pad}{inner})"
        case KLam(param, body):
            inner = _render(body, indent + 2, width)
            return f"(lambda ({param})\n{pad}{inner})"
        case CLet(name, value, body):
            value_s = _render(value, indent + len(name) + 8, width)
            body_s = _render(body, indent + 2, width)
            return f"(let ({name} {value_s})\n{pad}{body_s})"
        case CApp(fun, arg, kont):
            fun_s = _render(fun, indent + 2, width)
            arg_s = _render(arg, indent + 2, width)
            kont_s = _render(kont, indent + 2, width)
            return f"({fun_s}\n{pad}{arg_s}\n{pad}{kont_s})"
        case CIf0(kvar, kont, test, then, orelse):
            kont_s = _render(kont, indent + len(kvar) + 8, width)
            test_s = _render(test, indent + 8, width)
            then_s = _render(then, indent + 4, width)
            else_s = _render(orelse, indent + 4, width)
            inner_pad = " " * (indent + 4)
            return (
                f"(let ({kvar} {kont_s})\n"
                f"{pad}(if0 {test_s}\n"
                f"{inner_pad}{then_s}\n"
                f"{inner_pad}{else_s}))"
            )
        case CPrimLet(name, op, args, body):
            rendered = " ".join(_flat(a) for a in args)
            body_s = _render(body, indent + 2, width)
            return f"(let ({name} ({op} {rendered}))\n{pad}{body_s})"
        case CLoop(kont):
            kont_s = _render(kont, indent + 2, width)
            return f"(loop\n{pad}{kont_s})"
        case _:
            return flat
