"""The target language cps(A) and the syntactic CPS transformation.

Paper Definition 3.2: the transformation ``F``/``V`` maps A-normal
form programs into the continuation-passing language ``cps(A)``::

    P ::= (k W) | (let (x W) P) | (W W (lambda (x) P))
        | (let (k (lambda (x) P)) (if0 W P P))
    W ::= n | x | add1k | sub1k | (lambda (x k) P)

with ``x`` ranging over ``Vars``, ``k`` over ``KVars``, and
``KVars ∩ Vars = ∅``.  Continuation variables are kept disjoint by
construction: the transform derives them from binder names with a
``k/`` prefix, which cannot occur in a source binder after
:func:`repro.lang.rename.uniquify`.
"""

from repro.cps.ast import (
    CApp,
    CIf0,
    CLam,
    CLet,
    CLoop,
    CNum,
    CPrim,
    CPrimLet,
    CTerm,
    CVar,
    CValue,
    KApp,
    KLam,
    c_value_of,
)
from repro.cps.parser import parse_cps, parse_cps_value
from repro.cps.pretty import cps_pretty
from repro.cps.transform import (
    TOP_KVAR,
    cps_transform,
    cps_transform_value,
    kvar_for,
)
from repro.cps.untransform import UnCpsError, uncps, uncps_value
from repro.cps.validate import is_cps_term, validate_cps

__all__ = [
    "CApp",
    "CIf0",
    "CLam",
    "CLet",
    "CLoop",
    "CNum",
    "CPrim",
    "CPrimLet",
    "CTerm",
    "CValue",
    "CVar",
    "KApp",
    "KLam",
    "c_value_of",
    "cps_pretty",
    "parse_cps",
    "parse_cps_value",
    "cps_transform",
    "cps_transform_value",
    "kvar_for",
    "TOP_KVAR",
    "is_cps_term",
    "validate_cps",
    "UnCpsError",
    "uncps",
    "uncps_value",
]
