"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

- ``run``      evaluate a program with one of the three interpreters
- ``analyze``  run the comparison data flow analyzers (or one named
  ``--analyzer``, pushdown included) and print the facts
- ``trace``    emit a JSONL `repro.obs` trace of interpreter (and,
  optionally, analyzer) transitions
- ``anf``      print the A-normal form of a program
- ``cps``      print the CPS transform of a program
- ``optimize`` run the analysis-driven optimizer and print the result
- ``lint``     run the `repro.lint` diagnostics engine (syntactic
  rules plus analyzer-powered semantic rules)
- ``graph``    print the call or flow graph as Graphviz DOT
- ``bench``    run the `repro.perf` regression benchmark and write
  ``BENCH_perf.json``
- ``corpus``   list the corpus program names and families
- ``serve``    start the `repro.serve` HTTP/JSON analysis service
- ``request``  query a running service (retrying client)

Interpreter and analyzer failures exit with the structured
`repro.serve` codes (``fuel_exhausted`` = 3, ``diverged`` = 4,
``stuck`` = 5, ...); see ``--help`` for the full table.

``run``, ``analyze``, and ``dataflow`` accept ``--stats`` to print the
`repro.obs` work counters (visits, joins, widenings, loop cuts, span
timings) after their normal output.  ``analyze`` and ``dataflow``
accept ``--cache`` to enable the `repro.perf` caches (results are
identical; visit counts drop).  ``survey`` and ``report`` accept
``--jobs N`` to fan work out over worker processes.

Programs are read from a file argument, or from ``-e SOURCE`` for
inline text.  Free variables can be given concrete values (``run``)
or abstract assumptions (``analyze``) with ``--assume name=value``;
analysis assumptions default to ⊤ for numbers.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis import analyze_polyvariant
from repro.anf import normalize
from repro.analysis.registry import (
    ANALYZERS,
    INTERPRETERS,
    LINT_ANALYZERS,
    analyzer_choices,
    canonical_analyzer,
)
from repro.api import run_comparison
from repro.cfg import (
    build_call_graph,
    build_flow_graph,
    call_graph_to_dot,
    flow_graph_to_dot,
)
from repro.cps import cps_pretty, cps_transform
from repro.domains import (
    ConstPropDomain,
    IntervalDomain,
    Lattice,
    ParityDomain,
    SignDomain,
    UnitDomain,
)
from repro.interp import run_direct, run_semantic_cps, run_syntactic_cps
from repro.interp.values import Env, Store
from repro.lang import parse, pretty
from repro.lang.syntax import free_variables
from repro.obs import NULL_SINK, JsonlSink, Metrics, RecordingSink
from repro.opt import optimize

DOMAINS = {
    "constprop": ConstPropDomain,
    "unit": UnitDomain,
    "parity": ParityDomain,
    "sign": SignDomain,
    "interval": IntervalDomain,
}


def _load_term(args: argparse.Namespace):
    if args.expr is not None:
        source = args.expr
    elif args.file is not None:
        with open(args.file, "r", encoding="utf-8") as handle:
            source = handle.read()
    else:
        raise SystemExit("provide a FILE or -e SOURCE")
    return normalize(parse(source))


def _parse_assumes(pairs: list[str]) -> dict[str, int]:
    out = {}
    for pair in pairs:
        name, _, text = pair.partition("=")
        if not name or not text:
            raise SystemExit(f"bad --assume {pair!r}; expected name=value")
        try:
            out[name] = int(text)
        except ValueError:
            raise SystemExit(f"--assume value must be an integer: {pair!r}")
    return out


def _add_program_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("file", nargs="?", help="program file")
    parser.add_argument("-e", "--expr", help="inline program text")
    parser.add_argument(
        "--assume",
        action="append",
        default=[],
        metavar="NAME=INT",
        help="value for a free variable (repeatable)",
    )


def _concrete_bindings(term, values: dict[str, int]):
    env, store = Env(), Store()
    for name, value in values.items():
        loc = store.new(name)
        store.bind(loc, value)
        env = env.bind(name, loc)
    missing = free_variables(term) - set(values)
    if missing:
        raise SystemExit(f"unbound free variables: {sorted(missing)}")
    return env, store


def _cmd_run(args: argparse.Namespace) -> int:
    term = _load_term(args)
    values = _parse_assumes(args.assume)
    env, store = _concrete_bindings(term, values)
    sink = RecordingSink() if args.stats else NULL_SINK
    interpreter = canonical_analyzer(args.interpreter, INTERPRETERS)
    if interpreter == "direct":
        answer = run_direct(
            term, env=env, store=store, fuel=args.fuel, trace=sink
        )
    elif interpreter == "semantic-cps":
        answer = run_semantic_cps(
            term, env=env, store=store, fuel=args.fuel, trace=sink
        )
    else:
        if values:
            raise SystemExit(
                "--assume is not supported with the syntactic interpreter"
            )
        answer = run_syntactic_cps(
            cps_transform(term), fuel=args.fuel, trace=sink
        )
    print(answer.value)
    if args.stats:
        steps = len(sink.by_kind("interp.step"))
        print(
            f"; steps: {steps}, fuel remaining: {args.fuel - steps}",
            file=sys.stderr,
        )
    return 0


def _analysis_initial(term, lattice: Lattice, assumes: dict[str, int]):
    initial = {}
    for name in free_variables(term):
        if name in assumes:
            initial[name] = lattice.of_const(assumes[name])
        else:
            initial[name] = lattice.of_num(lattice.domain.top)
    return initial


def _print_metrics_snapshot(metrics: Metrics) -> None:
    import json

    print("\nmetrics snapshot:")
    print(json.dumps(metrics.snapshot(), indent=2, ensure_ascii=False))


def _cmd_analyze(args: argparse.Namespace) -> int:
    term = _load_term(args)
    domain = DOMAINS[args.domain]()
    lattice = Lattice(domain)
    initial = _analysis_initial(term, lattice, _parse_assumes(args.assume))
    metrics = Metrics() if args.stats else None
    cache = True if args.cache else None
    if args.analyzer is not None:
        # Single-analyzer mode: run exactly one named analyzer (any of
        # the registry's five, aliases included) instead of the N-way
        # comparison.  The pushdown analyzer is tree-only; asking for
        # its plan engine exits with the engine_unsupported code.
        from repro.incr.driver import run_analysis

        analyzer = canonical_analyzer(args.analyzer, ANALYZERS)
        result, _ = run_analysis(
            analyzer,
            term,
            domain=domain,
            initial=initial,
            k=args.k if args.k is not None else 1,
            loop_mode=args.loop_mode,
            metrics=metrics,
            cache=cache,
            engine=args.engine,
            plan_tier=args.plan_tier,
        )
        if analyzer == "polyvariant":
            result = result.collapse()
        if args.json:
            import json

            payload = {"analyzer": analyzer, "result": result.to_dict()}
            if metrics is not None:
                payload["metrics"] = metrics.snapshot()
            print(json.dumps(payload, indent=2, ensure_ascii=False))
            return 0
        print(f"value: {result.value!r}")
        for name in sorted(result.variables()):
            print(f"  {name:12} {result.value_of(name)!r}")
        if metrics is not None:
            print("\nper-analyzer work:")
            for key, value in sorted(result.stats.as_dict().items()):
                print(f"  {key:18} {value}")
            _print_metrics_snapshot(metrics)
        return 0
    if args.json:
        import json

        report = run_comparison(
            term,
            domain=domain,
            initial=initial,
            loop_mode=args.loop_mode,
            metrics=metrics,
            cache=cache,
            engine=args.engine,
            plan_tier=args.plan_tier,
        )
        payload = {
            "direct": report.direct.to_dict(),
            "semantic_cps": report.semantic.to_dict(),
            "syntactic_cps": report.syntactic.to_dict(),
            "verdicts": {
                "direct_vs_syntactic": report.direct_vs_syntactic.value,
                "semantic_vs_direct": report.semantic_vs_direct.value,
                "semantic_vs_syntactic": report.semantic_vs_syntactic.value,
            },
        }
        if report.pushdown is not None:
            payload["pushdown"] = report.pushdown.to_dict()
            payload["verdicts"]["pushdown_vs_direct"] = (
                report.pushdown_vs_direct.value
            )
        if metrics is not None:
            payload["metrics"] = metrics.snapshot()
        print(json.dumps(payload, indent=2, ensure_ascii=False))
        return 0
    if args.k is not None:
        result = analyze_polyvariant(
            term, domain, k=args.k, initial=initial, metrics=metrics,
            cache=cache, engine=args.engine, plan_tier=args.plan_tier,
        )
        collapsed = result.collapse()
        print(f"value: {collapsed.value!r}")
        for name in sorted(collapsed.variables()):
            print(f"  {name:12} {collapsed.value_of(name)!r}")
        if metrics is not None:
            print("\nper-analyzer work:")
            for key, value in sorted(result.stats.as_dict().items()):
                print(f"  {key:18} {value}")
            _print_metrics_snapshot(metrics)
        return 0
    report = run_comparison(
        term,
        domain=domain,
        initial=initial,
        loop_mode=args.loop_mode,
        metrics=metrics,
        cache=cache,
        engine=args.engine,
        plan_tier=args.plan_tier,
    )
    print(report.summary())
    print("\nper-variable facts (direct analyzer):")
    for name in sorted(report.direct.variables()):
        value = report.direct.value_of(name)
        constant = report.direct.constant_of(name)
        suffix = f"   == {constant}" if constant is not None else ""
        print(f"  {name:12} {value!r}{suffix}")
    if metrics is not None:
        print("\nper-analyzer work (Section 6.2 cost comparison):")
        print(report.work_summary())
        _print_metrics_snapshot(metrics)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.interp.errors import Diverged, FuelExhausted

    term = _load_term(args)
    values = _parse_assumes(args.assume)
    _concrete_bindings(term, values)  # fail early on unbound variables
    interpreter = (
        "all"
        if args.interpreter == "all"
        else canonical_analyzer(args.interpreter, INTERPRETERS)
    )
    if interpreter == "syntactic-cps" and values:
        raise SystemExit(
            "--assume is not supported with the syntactic interpreter"
        )
    wanted = INTERPRETERS if interpreter == "all" else (interpreter,)
    try:
        sink = JsonlSink(args.out) if args.out else JsonlSink(sys.stdout)
    except OSError as exc:
        raise SystemExit(f"cannot open trace output: {exc}")
    notes: list[str] = []
    try:
        for which in wanted:
            try:
                if which == "direct":
                    env, store = _concrete_bindings(term, values)
                    run_direct(
                        term, env=env, store=store,
                        fuel=args.fuel, trace=sink,
                    )
                elif which == "semantic-cps":
                    env, store = _concrete_bindings(term, values)
                    run_semantic_cps(
                        term, env=env, store=store,
                        fuel=args.fuel, trace=sink,
                    )
                elif values:
                    notes.append(
                        "syntactic interpreter skipped: --assume given"
                    )
                else:
                    run_syntactic_cps(
                        cps_transform(term), fuel=args.fuel, trace=sink
                    )
            except Diverged:
                notes.append(f"{which} interpreter diverged (loop)")
            except FuelExhausted:
                notes.append(f"{which} interpreter ran out of fuel")
        if args.analyzers:
            domain = DOMAINS[args.domain]()
            lattice = Lattice(domain)
            initial = _analysis_initial(
                term, lattice, _parse_assumes(args.assume)
            )
            run_comparison(
                term,
                domain=domain,
                initial=initial,
                loop_mode=args.loop_mode,
                trace=sink,
            )
        emitted = sink.emitted
    finally:
        sink.close()
    for note in notes:
        print(f"; {note}", file=sys.stderr)
    if args.out:
        print(f"; {emitted} events -> {args.out}", file=sys.stderr)
    return 0


def _cmd_anf(args: argparse.Namespace) -> int:
    print(pretty(_load_term(args)))
    return 0


def _cmd_cps(args: argparse.Namespace) -> int:
    print(cps_pretty(cps_transform(_load_term(args))))
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    term = _load_term(args)
    domain = DOMAINS[args.domain]()
    lattice = Lattice(domain)
    initial = _analysis_initial(term, lattice, _parse_assumes(args.assume))
    passes = tuple(args.passes.split(",")) if args.passes else None
    kwargs = {"passes": passes} if passes else {}
    report = optimize(term, domain, initial=initial, **kwargs)
    print(pretty(report.term))
    print(f"; rounds: {report.rounds}", file=sys.stderr)
    print(f"; analysis: {report.analysis.value!r}", file=sys.stderr)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.corpus.programs import PROGRAMS, corpus_program
    from repro.lint import has_errors, render_json, render_text, run_lints
    from repro.serve.codes import CODES

    domain = DOMAINS[args.domain]()
    lattice = Lattice(domain)
    jobs: list[tuple] = []
    if args.all:
        for program in PROGRAMS.values():
            jobs.append((program, None, None))
    elif args.corpus is not None:
        try:
            jobs.append((corpus_program(args.corpus), None, None))
        except KeyError:
            raise SystemExit(f"unknown corpus program {args.corpus!r}")
    else:
        if args.expr is not None:
            source, name = args.expr, "<expr>"
        elif args.file is not None:
            with open(args.file, "r", encoding="utf-8") as handle:
                source = handle.read()
            name = args.file
        else:
            raise SystemExit(
                "provide a FILE, -e SOURCE, --corpus NAME, or --all"
            )
        assumes = _parse_assumes(args.assume)
        initial = {
            key: lattice.of_const(value) for key, value in assumes.items()
        }
        jobs.append((source, name, initial))
    reports = [
        run_lints(
            program,
            analyzer=args.analyzer,
            domain=domain,
            initial=initial,
            loop_mode=args.loop_mode,
            max_visits=args.max_visits,
            semantic=not args.syntactic_only,
            fix=args.fix,
            program_name=name,
            engine=args.engine,
            plan_tier=args.plan_tier,
        )
        for program, name, initial in jobs
    ]
    if args.format == "json":
        if args.all:
            print(
                json.dumps(
                    [report.as_dict() for report in reports],
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            print(render_json(reports[0]), end="")
    else:
        print("\n\n".join(render_text(report) for report in reports))
    if any(has_errors(report) for report in reports):
        return CODES["lint_error"].exit_code
    return 0


def _cmd_graph(args: argparse.Namespace) -> int:
    term = _load_term(args)
    domain = ConstPropDomain()
    lattice = Lattice(domain)
    initial = _analysis_initial(term, lattice, _parse_assumes(args.assume))
    from repro.analysis import analyze_direct

    result = analyze_direct(term, domain, initial=initial)
    call_graph = build_call_graph(term, result)
    if args.kind == "call":
        print(call_graph_to_dot(call_graph))
    else:
        print(flow_graph_to_dot(build_flow_graph(term, call_graph)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro.serve.codes import exit_codes_help

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Sabry & Felleisen (PLDI 1994) reproduction: interpreters, "
            "CPS transformation, and data flow analyzers for the "
            "language A."
        ),
        epilog=exit_codes_help(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser("run", help="evaluate a program")
    _add_program_arguments(run_parser)
    run_parser.add_argument(
        "--interpreter",
        choices=analyzer_choices(INTERPRETERS),
        default="direct",
        help="which Figure 1-3 interpreter to use",
    )
    run_parser.add_argument(
        "--fuel", type=int, default=1_000_000, help="step budget"
    )
    run_parser.add_argument(
        "--stats",
        action="store_true",
        help="print step counts (repro.obs) to stderr",
    )
    run_parser.set_defaults(handler=_cmd_run)

    trace_parser = commands.add_parser(
        "trace",
        help="emit a JSONL repro.obs trace of interpreter transitions",
    )
    _add_program_arguments(trace_parser)
    trace_parser.add_argument(
        "--out",
        metavar="FILE",
        help="trace file (default: stdout)",
    )
    trace_parser.add_argument(
        "--interpreter",
        choices=("all",) + analyzer_choices(INTERPRETERS),
        default="all",
        help="which Figure 1-3 interpreter(s) to trace",
    )
    trace_parser.add_argument(
        "--analyzers",
        action="store_true",
        help="also trace the comparison analyzers (Figures 4-6 plus "
        "the pushdown analyzer)",
    )
    trace_parser.add_argument(
        "--domain", choices=sorted(DOMAINS), default="constprop"
    )
    trace_parser.add_argument(
        "--loop-mode",
        choices=("reject", "top", "unroll"),
        default="top",
        help="`loop` handling when tracing the CPS analyzers",
    )
    trace_parser.add_argument(
        "--fuel", type=int, default=1_000_000, help="step budget"
    )
    trace_parser.set_defaults(handler=_cmd_trace)

    analyze_parser = commands.add_parser(
        "analyze", help="run the data flow analyzers"
    )
    _add_program_arguments(analyze_parser)
    analyze_parser.add_argument(
        "--domain", choices=sorted(DOMAINS), default="constprop"
    )
    analyze_parser.add_argument(
        "--loop-mode",
        choices=("reject", "top", "unroll"),
        default="reject",
        help="`loop` handling for the CPS analyzers",
    )
    analyze_parser.add_argument(
        "--analyzer",
        choices=analyzer_choices(ANALYZERS),
        default=None,
        metavar="NAME",
        help="run exactly one named analyzer instead of the N-way "
        "comparison (pushdown included; aliases accepted)",
    )
    analyze_parser.add_argument(
        "--k",
        type=int,
        default=None,
        metavar="K",
        help="use the polyvariant (k-CFA) direct analyzer instead",
    )
    analyze_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the comparison report as JSON",
    )
    analyze_parser.add_argument(
        "--stats",
        action="store_true",
        help="print the repro.obs work counters and metrics snapshot",
    )
    analyze_parser.add_argument(
        "--cache",
        action="store_true",
        help=(
            "enable the repro.perf eval cache (identical results, "
            "fewer visits)"
        ),
    )
    analyze_parser.add_argument(
        "--engine",
        choices=("tree", "plan"),
        default="tree",
        help=(
            "tree-walking analyzers (default) or the compiled-plan "
            "engines (identical answers and statistics)"
        ),
    )
    analyze_parser.add_argument(
        "--plan-tier",
        choices=("opt", "base"),
        default="opt",
        help="optimized (fused superinstruction) or baseline "
        "compiled plans under --engine plan",
    )
    analyze_parser.set_defaults(handler=_cmd_analyze)

    anf_parser = commands.add_parser("anf", help="print the A-normal form")
    _add_program_arguments(anf_parser)
    anf_parser.set_defaults(handler=_cmd_anf)

    cps_parser = commands.add_parser("cps", help="print the CPS transform")
    _add_program_arguments(cps_parser)
    cps_parser.set_defaults(handler=_cmd_cps)

    optimize_parser = commands.add_parser(
        "optimize", help="run the analysis-driven optimizer"
    )
    _add_program_arguments(optimize_parser)
    optimize_parser.add_argument(
        "--domain", choices=sorted(DOMAINS), default="constprop"
    )
    optimize_parser.add_argument(
        "--passes",
        help="comma-separated subset of inline,dup,fold,dce",
    )
    optimize_parser.set_defaults(handler=_cmd_optimize)

    lint_parser = commands.add_parser(
        "lint",
        help="run the repro.lint diagnostics engine",
        description=(
            "Lint a program: syntactic rules (S1xx) always run; "
            "semantic rules (L0xx) are proved by the chosen analyzer, "
            "so the findings themselves measure analyzer precision. "
            "Exits with the `lint_error` code when any error-severity "
            "diagnostic fires."
        ),
    )
    _add_program_arguments(lint_parser)
    lint_parser.add_argument(
        "--corpus",
        metavar="NAME",
        help="lint a corpus program instead of FILE/-e",
    )
    lint_parser.add_argument(
        "--all",
        action="store_true",
        help="lint every corpus program",
    )
    lint_parser.add_argument(
        "--analyzer",
        choices=analyzer_choices(LINT_ANALYZERS),
        default="direct",
        help="which analyzer powers the semantic rules (Figure 4-6 "
        "analyzers or pushdown; aliases accepted)",
    )
    lint_parser.add_argument(
        "--domain", choices=sorted(DOMAINS), default="constprop"
    )
    lint_parser.add_argument(
        "--loop-mode",
        choices=("reject", "top", "unroll"),
        default="top",
        help="`loop` handling for the CPS analyzers (lint default: top)",
    )
    lint_parser.add_argument(
        "--max-visits",
        type=int,
        default=250_000,
        metavar="N",
        help=(
            "analyzer work budget; exceeding it degrades to "
            "syntactic-only findings instead of failing"
        ),
    )
    lint_parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="diagnostic rendering",
    )
    lint_parser.add_argument(
        "--fix",
        action="store_true",
        help="apply every fix-it and include the fixed program",
    )
    lint_parser.add_argument(
        "--syntactic-only",
        action="store_true",
        help="skip the analyzer and the semantic rules",
    )
    lint_parser.add_argument(
        "--engine",
        choices=("tree", "plan"),
        default="tree",
        help="analyzer engine powering the semantic rules",
    )
    lint_parser.add_argument(
        "--plan-tier",
        choices=("opt", "base"),
        default="opt",
        help="optimized (fused superinstruction) or baseline "
        "compiled plans under --engine plan",
    )
    lint_parser.set_defaults(handler=_cmd_lint)

    graph_parser = commands.add_parser(
        "graph", help="print call/flow graphs as DOT"
    )
    _add_program_arguments(graph_parser)
    graph_parser.add_argument(
        "--kind", choices=("call", "flow"), default="call"
    )
    graph_parser.set_defaults(handler=_cmd_graph)

    report_parser = commands.add_parser(
        "report",
        help="regenerate the EXPERIMENTS.md measured tables",
    )
    report_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="render report sections across N worker processes",
    )
    report_parser.add_argument(
        "--section",
        default=None,
        metavar="NAME",
        help="render only the named section (e.g. witnesses, lint)",
    )
    report_parser.set_defaults(handler=_cmd_report)

    survey_parser = commands.add_parser(
        "survey",
        help="tabulate analysis verdicts over program populations",
    )
    survey_parser.add_argument(
        "--count", type=int, default=100, help="random programs to survey"
    )
    survey_parser.add_argument(
        "--depth", type=int, default=4, help="random program depth"
    )
    survey_parser.add_argument(
        "--domain", choices=sorted(DOMAINS), default="constprop"
    )
    survey_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "survey programs across N worker processes (0 = one per "
            "CPU; parallel path requires the default domain)"
        ),
    )
    survey_parser.add_argument(
        "--engine",
        choices=("tree", "plan"),
        default="tree",
        help="analyzer engine used for every surveyed program",
    )
    survey_parser.add_argument(
        "--plan-tier",
        choices=("opt", "base"),
        default="opt",
        help="optimized (fused superinstruction) or baseline "
        "compiled plans under --engine plan",
    )
    survey_parser.set_defaults(handler=_cmd_survey)

    bench_parser = commands.add_parser(
        "bench",
        help="run the repro.perf regression benchmark",
    )
    bench_parser.add_argument(
        "--quick",
        action="store_true",
        help="small workload sweep (CI smoke)",
    )
    bench_parser.add_argument(
        "--out",
        default="BENCH_perf.json",
        metavar="FILE",
        help="output JSON path (default: BENCH_perf.json)",
    )
    bench_parser.add_argument(
        "--repeat",
        type=int,
        default=5,
        metavar="N",
        help="time each workload N times and report the minimum",
    )
    bench_parser.add_argument(
        "--engine",
        choices=("tree", "plan"),
        default="tree",
        help="engine for the cache-comparison workloads (the "
        "plan-vs-tree section always measures both)",
    )
    bench_parser.add_argument(
        "--plan-tier",
        choices=("opt", "base"),
        default="opt",
        help="plan tier for plan-engine workloads (the plan_opt "
        "section always measures both tiers)",
    )
    bench_parser.add_argument(
        "--timestamp",
        default=None,
        metavar="ISO8601",
        help="generated_at stamp recorded in the payload "
        "(default: current UTC time)",
    )
    bench_parser.add_argument(
        "--jobs",
        type=int,
        default=4,
        metavar="N",
        help="worker count for the parallel-survey section "
        "(persistent pool; speedup only asserted with enough CPUs)",
    )
    bench_parser.set_defaults(handler=_cmd_bench)

    compile_parser = commands.add_parser(
        "compile",
        help="compile to bytecode and run on the abstract machine",
    )
    _add_program_arguments(compile_parser)
    compile_parser.add_argument(
        "--backend",
        choices=("direct", "cps"),
        default="direct",
        help="direct (frame-pushing) or CPS (stackless) code generator",
    )
    compile_parser.add_argument(
        "--no-run",
        action="store_true",
        help="only print the bytecode",
    )
    compile_parser.set_defaults(handler=_cmd_compile)

    dataflow_parser = commands.add_parser(
        "dataflow",
        help="run the classical MFP/MOP solvers over the flow graph",
    )
    _add_program_arguments(dataflow_parser)
    dataflow_parser.add_argument(
        "--solver", choices=("mfp", "mop", "both"), default="both"
    )
    dataflow_parser.add_argument(
        "--domain", choices=sorted(DOMAINS), default="constprop"
    )
    dataflow_parser.add_argument(
        "--refine",
        action="store_true",
        help="propagate test=0 along then-edges",
    )
    dataflow_parser.add_argument(
        "--stats",
        action="store_true",
        help="print the solvers' repro.obs metrics snapshot",
    )
    dataflow_parser.add_argument(
        "--cache",
        action="store_true",
        help="memoize MFP fact joins (repro.perf; identical solution)",
    )
    dataflow_parser.set_defaults(handler=_cmd_dataflow)

    corpus_parser = commands.add_parser(
        "corpus",
        help="list corpus program names and parametric families",
    )
    corpus_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the listing as JSON (the GET /v1/corpus body)",
    )
    corpus_parser.set_defaults(handler=_cmd_corpus)

    serve_parser = commands.add_parser(
        "serve",
        help="start the repro.serve HTTP/JSON analysis service",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=8184, help="0 picks an ephemeral port"
    )
    serve_parser.add_argument(
        "--workers", type=int, default=4, help="worker pool size"
    )
    serve_parser.add_argument(
        "--worker-model",
        choices=("thread", "process"),
        default="thread",
        help="thread: in-process worker pool; process: --workers "
        "analysis shard processes with consistent-hash routing",
    )
    serve_parser.add_argument(
        "--queue-size",
        type=int,
        default=64,
        help="pending-request bound; a full queue answers `overloaded`",
    )
    serve_parser.add_argument(
        "--cache-size",
        type=int,
        default=256,
        help="cross-request LRU result cache entries (0 disables)",
    )
    serve_parser.add_argument(
        "--max-visits",
        type=int,
        default=250_000,
        help="per-request analyzer work budget (and request cap)",
    )
    serve_parser.add_argument(
        "--fuel",
        type=int,
        default=1_000_000,
        help="per-request interpreter step budget (and request cap)",
    )
    serve_parser.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-request wall-clock budget in seconds",
    )
    serve_parser.add_argument(
        "--trace",
        metavar="FILE",
        help="JSONL repro.obs trace sink (flushed on drain)",
    )
    serve_parser.add_argument(
        "--access-log",
        metavar="FILE",
        help="JSONL access log: one record per POST (flushed on drain)",
    )
    serve_parser.add_argument(
        "--slow-threshold",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="capture full span traces for requests at least this "
        "slow (0 captures every request)",
    )
    serve_parser.add_argument(
        "--debug-hooks",
        action="store_true",
        help="honor the debug_sleep_ms request field (tests/smoke only)",
    )
    serve_parser.add_argument(
        "--incr-store",
        metavar="FILE",
        help="persistent repro.incr summary/response store (sqlite); "
        "shared safely between shard processes and server restarts",
    )
    serve_parser.add_argument(
        "--verbose", action="store_true", help="log requests to stderr"
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    request_parser = commands.add_parser(
        "request",
        help="query a running repro serve instance",
    )
    request_parser.add_argument(
        "endpoint",
        choices=(
            "analyze", "run", "compare", "lint", "corpus", "health",
            "metrics",
        ),
    )
    _add_program_arguments(request_parser)
    request_parser.add_argument(
        "--url",
        default="http://127.0.0.1:8184",
        help="service base URL",
    )
    request_parser.add_argument(
        "--corpus",
        metavar="NAME",
        help="analyze a corpus program instead of FILE/-e",
    )
    request_parser.add_argument(
        "--analyzer",
        choices=analyzer_choices(ANALYZERS),
        default=None,
    )
    request_parser.add_argument(
        "--interpreter",
        choices=analyzer_choices(INTERPRETERS),
        default=None,
    )
    request_parser.add_argument(
        "--domain", choices=sorted(DOMAINS), default=None
    )
    request_parser.add_argument(
        "--loop-mode", choices=("reject", "top", "unroll"), default=None
    )
    request_parser.add_argument("--k", type=int, default=None)
    request_parser.add_argument("--max-visits", type=int, default=None)
    request_parser.add_argument("--fuel", type=int, default=None)
    request_parser.add_argument(
        "--engine", choices=("tree", "plan"), default=None
    )
    request_parser.add_argument(
        "--plan-tier", choices=("opt", "base"), default=None
    )
    request_parser.add_argument(
        "--cache",
        action="store_true",
        help="enable the repro.perf eval cache server-side",
    )
    request_parser.add_argument(
        "--retries",
        type=int,
        default=5,
        help="extra attempts on overloaded/timeout/connection errors",
    )
    request_parser.add_argument(
        "--timeout", type=float, default=60.0, help="HTTP timeout seconds"
    )
    request_parser.add_argument(
        "--server-timing",
        action="store_true",
        help="ask the server to embed its stage breakdown "
        "(queue wait, plan compile, analyze, serialize) in the body",
    )
    request_parser.set_defaults(handler=_cmd_request)

    loadgen_parser = commands.add_parser(
        "loadgen",
        help="drive a repro serve instance and write BENCH_serve.json",
    )
    loadgen_parser.add_argument(
        "--url",
        default=None,
        help="base URL of a running server (default: spawn a private "
        "one on an ephemeral port and tear it down afterwards)",
    )
    loadgen_parser.add_argument(
        "--mode",
        choices=("closed", "open"),
        default="closed",
        help="closed: workers fire back-to-back (saturation); open: "
        "fixed arrival rate, latency charged from scheduled arrival",
    )
    loadgen_parser.add_argument(
        "--mix",
        choices=("corpus", "unique"),
        default="corpus",
        help="corpus: cache-friendly route mix; unique: every request "
        "misses the result cache",
    )
    loadgen_parser.add_argument(
        "--replay",
        metavar="LOG",
        help="replay the request payloads of a JSONL access log "
        "instead of a synthetic mix",
    )
    loadgen_parser.add_argument(
        "--concurrency", type=int, default=4, help="worker threads"
    )
    loadgen_parser.add_argument(
        "--requests",
        type=int,
        default=None,
        metavar="N",
        help="closed loop: stop after N requests",
    )
    loadgen_parser.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop after this long (closed default: 10s)",
    )
    loadgen_parser.add_argument(
        "--rate",
        type=float,
        default=50.0,
        help="open loop: arrivals per second",
    )
    loadgen_parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="worker pool size for a spawned server",
    )
    loadgen_parser.add_argument(
        "--server-args",
        default=None,
        metavar="STRING",
        help="extra `repro serve` flags for a spawned server, e.g. "
        '"--worker-model process" (shlex-split; ignored with --url)',
    )
    loadgen_parser.add_argument(
        "--out",
        default="BENCH_serve.json",
        metavar="FILE",
        help="output JSON path (default: BENCH_serve.json)",
    )
    loadgen_parser.add_argument(
        "--timestamp",
        default=None,
        metavar="ISO8601",
        help="generated_at stamp recorded in the payload",
    )
    loadgen_parser.add_argument(
        "--quick",
        action="store_true",
        help="small closed-loop run (CI smoke)",
    )
    loadgen_parser.set_defaults(handler=_cmd_loadgen)

    cachectl_parser = commands.add_parser(
        "cachectl",
        help="inspect and manage the persistent repro.incr store",
    )
    cachectl_parser.add_argument(
        "action",
        choices=("stats", "gc", "warm", "path"),
        help="stats: counters and bytes; gc: LRU-evict to --max-bytes; "
        "warm: pre-analyze corpus programs into the store; "
        "path: print the resolved store path",
    )
    cachectl_parser.add_argument(
        "--store",
        metavar="FILE",
        help="store path (default: $REPRO_INCR_STORE or "
        "~/.cache/repro/incr.sqlite)",
    )
    cachectl_parser.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="gc: payload-byte budget to evict down to (0 clears all)",
    )
    cachectl_parser.add_argument(
        "--corpus",
        action="append",
        metavar="NAME",
        help="warm: corpus program(s) to analyze (repeatable; "
        "default: every non-heavy program)",
    )
    cachectl_parser.add_argument(
        "--analyzer",
        action="append",
        choices=analyzer_choices(ANALYZERS),
        metavar="NAME",
        help="warm: analyzer(s) to run (repeatable; default: direct "
        "and semantic-cps; pushdown runs but persists nothing — its "
        "memo is call-keyed, not sub-term-keyed)",
    )
    cachectl_parser.add_argument(
        "--domain",
        default="constprop",
        choices=("constprop", "unit", "parity", "sign", "interval"),
        help="warm: abstract domain (default constprop)",
    )
    cachectl_parser.add_argument(
        "--plans",
        action="store_true",
        help="warm: precompile every corpus program's ANF and cps(A) "
        "plans (heavy ones included) and persist them as kind=plan "
        "rows, so later serves/shards start warm without compiling",
    )
    cachectl_parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    cachectl_parser.set_defaults(handler=_cmd_cachectl)
    return parser


def _cmd_dataflow(args: argparse.Namespace) -> int:
    from repro.dataflow import build_problem, solve_mfp, solve_mop
    from repro.lang.syntax import free_variables as _free

    term = _load_term(args)
    domain = DOMAINS[args.domain]()
    assumes = _parse_assumes(args.assume)
    entry = {
        name: (
            domain.const(assumes[name]) if name in assumes else domain.top
        )
        for name in _free(term)
    }
    problem = build_problem(
        term, domain, entry_facts=entry, refine_tests=args.refine
    )
    solvers = {
        "mfp": solve_mfp,
        "mop": solve_mop,
    }
    metrics = Metrics() if args.stats else None
    wanted = ("mfp", "mop") if args.solver == "both" else (args.solver,)
    for which in wanted:
        if which == "mfp" and args.cache:
            solution = solvers[which](problem, metrics=metrics, cache=True)
        else:
            solution = solvers[which](problem, metrics=metrics)
        exit_facts = solution[problem.exit_point]
        print(f"[{which.upper()}] facts at exit:")
        if exit_facts is None:
            print("  (unreachable)")
            continue
        for name in sorted(exit_facts):
            print(f"  {name:12} {exit_facts[name]!r}")
    if metrics is not None:
        _print_metrics_snapshot(metrics)
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    from repro.cps import TOP_KVAR, cps_transform as to_cps
    from repro.machine import compile_cps, compile_direct, run_code
    from repro.machine.code import code_size

    term = _load_term(args)
    if args.backend == "direct":
        code = compile_direct(term)
        halt_kvar = None
    else:
        code = compile_cps(to_cps(term))
        halt_kvar = TOP_KVAR
    _print_code(code)
    print(f"; {code_size(code)} instructions", file=sys.stderr)
    if args.no_run:
        return 0
    values = _parse_assumes(args.assume)
    value, stats = run_code(code, initial_env=values, halt_kvar=halt_kvar)
    print(f"; result: {value}", file=sys.stderr)
    print(
        f"; steps: {stats.steps}, control-stack depth: {stats.max_frames}",
        file=sys.stderr,
    )
    return 0


def _print_code(code, depth: int = 0) -> None:
    from dataclasses import fields

    from repro.machine.code import Branch, BranchJump, Close, CloseF, CloseK

    pad = "  " * depth
    for instr in code:
        simple = ", ".join(
            f"{f.name}={getattr(instr, f.name)!r}"
            for f in fields(instr)
            if not isinstance(getattr(instr, f.name), tuple)
        )
        print(f"{pad}{type(instr).__name__}({simple})")
        match instr:
            case Close(_, inner) | CloseK(_, inner):
                _print_code(inner, depth + 1)
            case CloseF(_, _, inner):
                _print_code(inner, depth + 1)
            case Branch(t, e) | BranchJump(t, e):
                _print_code(t, depth + 1)
                print(f"{pad}--else--")
                _print_code(e, depth + 1)
            case _:
                pass


def _cmd_survey(args: argparse.Namespace) -> int:
    from repro.survey import (
        survey_corpus,
        survey_random,
        survey_random_open,
    )

    # None selects the default constant-propagation domain, which is
    # what the parallel (--jobs) worker path requires.
    domain = None if args.domain == "constprop" else DOMAINS[args.domain]()
    print(
        survey_corpus(
            domain,
            jobs=args.jobs,
            engine=args.engine,
            plan_tier=args.plan_tier,
        ).summary()
    )
    print()
    print(
        survey_random(
            args.count, args.depth, domain=domain, jobs=args.jobs,
            engine=args.engine, plan_tier=args.plan_tier,
        ).summary()
    )
    print()
    print(
        survey_random_open(
            args.count, args.depth, domain=domain, jobs=args.jobs,
            engine=args.engine, plan_tier=args.plan_tier,
        ).summary()
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.report import generate_report, section_keys

    if args.section is not None and args.section not in section_keys():
        raise SystemExit(
            f"unknown report section {args.section!r}; "
            f"choose from {', '.join(section_keys())}"
        )
    print(generate_report(jobs=args.jobs, section=args.section))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf.bench import run_bench, summarize

    try:
        payload = run_bench(
            quick=args.quick,
            out=args.out,
            repeat=args.repeat,
            engine=args.engine,
            plan_tier=args.plan_tier,
            generated_at=args.timestamp,
            jobs=args.jobs,
        )
    except ValueError as exc:
        print(f"bench FAILED: {exc}", file=sys.stderr)
        return 1
    print(summarize(payload))
    print(f"; wrote {args.out}", file=sys.stderr)
    return 0


def _cmd_cachectl(args: argparse.Namespace) -> int:
    import json as json_mod
    import os

    from repro.incr.driver import default_store_path, run_analysis
    from repro.incr.store import IncrStore, describe, render_stats

    path = args.store or default_store_path()
    if args.action == "path":
        print(path)
        return 0
    if args.action == "stats":
        summary = describe(path)
        if args.json:
            print(json_mod.dumps(summary, indent=2, sort_keys=True))
        else:
            print(render_stats(summary))
        return 0
    if args.action == "gc":
        if args.max_bytes is None:
            raise SystemExit("cachectl gc requires --max-bytes")
        with IncrStore(path) as store:
            report = store.gc(args.max_bytes)
        if args.json:
            print(json_mod.dumps(report, indent=2, sort_keys=True))
        else:
            print(
                f"evicted {report['evicted']} entries; "
                f"{report['bytes']} payload bytes remain "
                f"(generation {report['generation']})"
            )
        return 0
    # warm: analyze corpus programs straight into the store
    from repro.corpus.programs import PROGRAMS
    from repro.domains import Lattice
    from repro.serve.jobs import DOMAINS

    if args.plans:
        return _cachectl_warm_plans(args, path)
    domain_cls = DOMAINS[args.domain]
    names = args.corpus or sorted(
        name for name, prog in PROGRAMS.items() if not prog.heavy
    )
    analyzers = args.analyzer or ["direct", "semantic-cps"]
    unknown = [name for name in names if name not in PROGRAMS]
    if unknown:
        raise SystemExit(f"unknown corpus program(s): {unknown}")
    warmed = []
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with IncrStore(path) as store:
        for name in names:
            program = PROGRAMS[name]
            for analyzer in analyzers:
                domain = domain_cls()
                initial = program.initial_for(Lattice(domain))
                before = store.stats.puts
                run_analysis(
                    analyzer,
                    program.term,
                    domain=domain,
                    initial=initial,
                    store=store,
                    loop_mode="top",
                )
                warmed.append(
                    {
                        "corpus": name,
                        "analyzer": analyzer,
                        "written": store.stats.puts - before,
                    }
                )
        summary = store.summary()
    if args.json:
        print(
            json_mod.dumps(
                {"warmed": warmed, "store": summary},
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for row in warmed:
            print(
                f"  {row['corpus']:26} {row['analyzer']:14} "
                f"+{row['written']} summaries"
            )
        print(
            f"store {summary['path']}: {summary['entries']} entries, "
            f"{summary['bytes']} bytes"
        )
    return 0


def _cachectl_warm_plans(args: argparse.Namespace, path: str) -> int:
    """``cachectl warm --plans``: compile (or load) every corpus
    program's base plans — both transforms, heavy ones included — and
    persist them as ``kind=plan`` rows."""
    import json as json_mod
    import os

    from repro.corpus.programs import PROGRAMS
    from repro.cps import cps_transform
    from repro.incr.plans import attach_plan_store
    from repro.incr.store import IncrStore
    from repro.machine.absplan import PLAN_CACHE

    names = args.corpus or sorted(PROGRAMS)
    unknown = [name for name in names if name not in PROGRAMS]
    if unknown:
        raise SystemExit(f"unknown corpus program(s): {unknown}")
    warmed = []
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with IncrStore(path) as store:
        attach_plan_store(store)
        try:
            for name in names:
                term = PROGRAMS[name].term
                before = PLAN_CACHE.snapshot()
                row = {"corpus": name, "anf": False, "cps": False}
                try:
                    PLAN_CACHE.anf_plan(term, "base")
                    row["anf"] = True
                    PLAN_CACHE.cps_plan(cps_transform(term), "base")
                    row["cps"] = True
                except Exception:
                    # Plans cover the restricted subset only.
                    pass
                after = PLAN_CACHE.snapshot()
                row["compiled"] = after["compiles"] - before["compiles"]
                row["loaded"] = after["disk_loads"] - before["disk_loads"]
                row["persisted"] = after["persisted"] - before["persisted"]
                warmed.append(row)
        finally:
            attach_plan_store(None)
        summary = store.summary()
    plan_kind = summary["by_kind"].get("plan", {})
    if args.json:
        print(
            json_mod.dumps(
                {"warmed": warmed, "store": summary},
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for row in warmed:
            print(
                f"  {row['corpus']:26} compiled={row['compiled']} "
                f"loaded={row['loaded']} persisted={row['persisted']}"
            )
        print(
            f"store {summary['path']}: "
            f"{plan_kind.get('entries', 0)} plan entries, "
            f"{plan_kind.get('payload_bytes', 0)} plan payload bytes"
        )
    return 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    from repro.corpus.programs import corpus_listing

    listing = corpus_listing()
    if args.json:
        import json

        print(json.dumps(listing, indent=2, ensure_ascii=False))
        return 0
    print("corpus programs (valid `corpus`/`--corpus` values):")
    for entry in listing["programs"]:
        marker = "  [heavy]" if entry["heavy"] else ""
        print(f"  {entry['name']:26} {entry['description']}{marker}")
    print("\nparametric families (repro.corpus generators):")
    for entry in listing["families"]:
        print(f"  {entry['name']:26} {entry['description']}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs import NULL_SINK as null_sink
    from repro.serve.jobs import ServiceDefaults
    from repro.serve.server import AnalysisService

    try:
        trace = JsonlSink(args.trace) if args.trace else null_sink
    except OSError as exc:
        raise SystemExit(f"cannot open trace output: {exc}")
    try:
        service = AnalysisService(
            host=args.host,
            port=args.port,
            workers=args.workers,
            worker_model=args.worker_model,
            queue_size=args.queue_size,
            cache_size=args.cache_size,
            defaults=ServiceDefaults(
                max_visits=args.max_visits,
                fuel=args.fuel,
                timeout_seconds=args.timeout,
                debug_hooks=args.debug_hooks,
            ),
            trace=trace,
            verbose=args.verbose,
            access_log=args.access_log,
            slow_threshold_s=args.slow_threshold,
            incr_store=args.incr_store,
        )
    except OSError as exc:
        raise SystemExit(f"cannot start service: {exc}")
    print(f"listening on {service.url}", file=sys.stderr, flush=True)
    code = service.run_until_signal()
    print("drained; bye", file=sys.stderr, flush=True)
    return code


def _cmd_request(args: argparse.Namespace) -> int:
    import json

    from repro.serve.client import RetryPolicy, ServiceClient, ServiceError

    client = ServiceClient(
        args.url,
        policy=RetryPolicy(retries=args.retries),
        request_timeout=args.timeout,
    )
    payload: dict = {}
    if args.corpus is not None:
        payload["corpus"] = args.corpus
    elif args.expr is not None:
        payload["program"] = args.expr
    elif args.file is not None:
        with open(args.file, "r", encoding="utf-8") as handle:
            payload["program"] = handle.read()
    if args.assume:
        payload["assume"] = _parse_assumes(args.assume)
    for name, value in (
        ("analyzer", args.analyzer),
        ("interpreter", args.interpreter),
        ("domain", args.domain),
        ("loop_mode", args.loop_mode),
        ("k", args.k),
        ("max_visits", args.max_visits),
        ("fuel", args.fuel),
        ("engine", args.engine),
        ("plan_tier", args.plan_tier),
    ):
        if value is not None:
            payload[name] = value
    if args.cache:
        payload["cache"] = True
    if args.server_timing:
        payload["server_timing"] = True
    try:
        if args.endpoint == "health":
            body = client.healthz()
        elif args.endpoint == "metrics":
            body = client.metricsz()
        elif args.endpoint == "corpus":
            body = client.corpus()
        else:
            if "program" not in payload and "corpus" not in payload:
                raise SystemExit(
                    "provide a FILE, -e SOURCE, or --corpus NAME"
                )
            body = client.request(f"/v1/{args.endpoint}", payload)
    except ServiceError as exc:
        print(f"repro request: {exc.code}: {exc}", file=sys.stderr)
        return exc.exit_code
    print(json.dumps(body, indent=2, ensure_ascii=False))
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import shlex

    from repro.serve.loadgen import run_loadgen, summarize

    try:
        payload = run_loadgen(
            args.url,
            mode=args.mode,
            mix=args.mix,
            replay=args.replay,
            concurrency=args.concurrency,
            total=args.requests,
            duration_s=args.duration,
            rate=args.rate,
            workers=args.workers,
            server_args=(
                shlex.split(args.server_args) if args.server_args else None
            ),
            out=args.out,
            generated_at=args.timestamp,
            quick=args.quick,
        )
    except (ValueError, RuntimeError, OSError) as exc:
        print(f"loadgen FAILED: {exc}", file=sys.stderr)
        return 1
    print(summarize(payload))
    print(f"wrote {args.out}", file=sys.stderr)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    from repro.analysis.common import AnalysisError
    from repro.interp.errors import InterpError
    from repro.lang.errors import LangError

    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except (AnalysisError, InterpError, LangError) as exc:
        from repro.serve.codes import exit_code_for

        code, message = exit_code_for(exc)
        print(f"repro: {message}", file=sys.stderr)
        return code
    except BrokenPipeError:
        # stdout's reader went away (e.g. `repro corpus | head`);
        # hand the fd a sink so interpreter shutdown can't re-raise
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
