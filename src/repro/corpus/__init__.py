"""Program corpus: the paper's witness programs and a library of
sample programs used by tests, examples and benchmarks."""

from repro.corpus.programs import (
    CorpusProgram,
    FAMILIES,
    PROGRAMS,
    SHIVERS_EXAMPLE,
    THEOREM_51_WITNESS,
    THEOREM_52_CONDITIONAL,
    THEOREM_52_TWO_CLOSURES,
    ackermann_open,
    conditional_chain,
    call_site_chain,
    corpus_listing,
    corpus_program,
    loop_feeding_conditional,
    loop_threshold_open,
    top_conditional_chain,
)

__all__ = [
    "CorpusProgram",
    "FAMILIES",
    "PROGRAMS",
    "SHIVERS_EXAMPLE",
    "THEOREM_51_WITNESS",
    "THEOREM_52_CONDITIONAL",
    "THEOREM_52_TWO_CLOSURES",
    "ackermann_open",
    "conditional_chain",
    "call_site_chain",
    "corpus_listing",
    "corpus_program",
    "loop_feeding_conditional",
    "loop_threshold_open",
    "top_conditional_chain",
]
