"""The paper's witness programs and parametric program families.

Each witness carries the initial-store assumptions under which the
paper states its theorem, so tests, benchmarks and examples all run
the exact same configuration.

The parametric families (`conditional_chain`, `call_site_chain`,
`loop_feeding_conditional`) generate the workloads of the Section 6.2
cost and computability experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.analysis.common import AbsClo
from repro.anf import normalize
from repro.domains.absval import AbsVal, Lattice
from repro.lang.ast import Num, Term, Var
from repro.lang.parser import parse


@dataclass(frozen=True)
class CorpusProgram:
    """A named program plus the free-variable assumptions it is
    analyzed under.

    ``initial`` is a builder: given the lattice, it produces the
    initial abstract store contents (closures must be built against
    the lattice's domain-independent closure sets, but numbers need
    the domain, hence the indirection).
    """

    name: str
    description: str
    term: Term
    initial: Callable[[Lattice], Mapping[str, AbsVal]]
    #: True for programs whose *syntactic-CPS* analysis blows up
    #: (Section 6.2 duplication x false returns); corpus-wide analyzer
    #: sweeps skip these unless they set an explicit work budget.
    heavy: bool = False

    def initial_for(self, lattice: Lattice) -> dict[str, AbsVal]:
        """The initial store contents for ``lattice``."""
        return dict(self.initial(lattice))


def _anf(source: str) -> Term:
    return normalize(parse(source), ensure_unique=False)


# ----------------------------------------------------------------------
# Theorem 5.1: the direct analysis can beat the syntactic-CPS analysis
# ----------------------------------------------------------------------

#: Paper Section 5.1 proof witness: ``(let (a1 (f 1)) (let (a2 (f 2)) a2))``
#: with ``f`` bound to the identity closure ``(cle x, x)``.  The direct
#: analysis proves ``a1 = 1``; the CPS analysis merges the two
#: continuations flowing to the identity's k-parameter (a *false
#: return*) and loses it.
THEOREM_51_WITNESS = CorpusProgram(
    name="theorem-5.1",
    description="false returns: direct proves a1=1, syntactic-CPS does not",
    term=parse("(let (a1 (f 1)) (let (a2 (f 2)) a2))"),
    initial=lambda lat: {"f": lat.of_clos(AbsClo("x", Var("x")))},
)

#: Shivers' 0CFA example ([16] p.33, discussed in Section 6.1): the
#: same false-return confusion, phrased with two call sites of an
#: identity procedure defined in the program itself.
SHIVERS_EXAMPLE = CorpusProgram(
    name="shivers-p33",
    description="Shivers' example: 0CFA of CPS merges distinct returns",
    term=_anf(
        """(let (id (lambda (x) x))
             (let (a1 (id 1))
               (let (a2 (id 2))
                 a2)))"""
    ),
    initial=lambda lat: {},
)

# ----------------------------------------------------------------------
# Theorem 5.2: the syntactic-CPS analysis can beat the direct analysis
# ----------------------------------------------------------------------

#: Paper Section 5.1, Theorem 5.2 first case: a conditional join.  The
#: direct analysis merges ``a1 in {0, 1}`` to ⊤ before analyzing the
#: second conditional and loses ``a2``; the CPS analysis re-analyzes
#: the continuation per branch and proves ``a2 = 3``.
THEOREM_52_CONDITIONAL = CorpusProgram(
    name="theorem-5.2-conditional",
    description="duplication at a conditional: CPS proves a2=3, direct does not",
    term=_anf(
        """(let (a1 (if0 x 0 1))
             (let (a2 (if0 a1 (+ a1 3) (+ a1 2)))
               a2))"""
    ),
    initial=lambda lat: {"x": lat.of_num(lat.domain.top)},
)

#: Paper Section 5.1, Theorem 5.2 second case: two closures at one
#: call site.  ``f`` is bound to closures returning 0 and 1; the direct
#: analysis joins the two results at ``a1``, the CPS analysis analyzes
#: the continuation once per closure and proves ``a2 = 5``.
THEOREM_52_TWO_CLOSURES = CorpusProgram(
    name="theorem-5.2-two-closures",
    description="duplication at a call: CPS proves a2=5, direct does not",
    term=_anf(
        """(let (a1 (f 3))
             (let (a2 (if0 a1 5 (if0 (sub1 a1) 5 6)))
               a2))"""
    ),
    initial=lambda lat: {
        "f": lat.of_clos(AbsClo("d0", Num(0)), AbsClo("d1", Num(1)))
    },
)


# ----------------------------------------------------------------------
# Closed sample programs (analyzed with empty assumptions)
# ----------------------------------------------------------------------


def _closed(
    name: str, description: str, source: str, heavy: bool = False
) -> CorpusProgram:
    return CorpusProgram(
        name, description, _anf(source), lambda lat: {}, heavy
    )


PROGRAMS: dict[str, CorpusProgram] = {
    p.name: p
    for p in [
        THEOREM_51_WITNESS,
        SHIVERS_EXAMPLE,
        THEOREM_52_CONDITIONAL,
        THEOREM_52_TWO_CLOSURES,
        _closed(
            "constants",
            "straight-line constant arithmetic",
            "(let (a (+ 1 2)) (let (b (* a a)) (let (c (- b 4)) c)))",
        ),
        _closed(
            "higher-order",
            "closures flowing through higher-order calls",
            """(let (twice (lambda (f) (lambda (n) (f (f n)))))
                 (let (inc2 (twice add1))
                   (inc2 0)))""",
        ),
        _closed(
            "branchy",
            "conditionals with a statically known test",
            "(let (t (if0 0 10 20)) (let (u (if0 t 1 2)) (+ t u)))",
        ),
        _closed(
            "factorial",
            "recursion through self-application",
            """(let (fact (lambda (self)
                            (lambda (n)
                              (if0 n 1 (* n ((self self) (- n 1)))))))
                 ((fact fact) 6))""",
        ),
        _closed(
            "even-odd",
            "mutual recursion encoded with a selector",
            """(let (mk (lambda (self)
                          (lambda (flag)
                            (lambda (n)
                              (if0 n
                                (if0 flag 1 0)
                                (((self self) (- 1 flag)) (- n 1)))))))
                 (((mk mk) 0) 10))""",
        ),
        _closed(
            "church",
            "Church numerals: three applied to add1",
            """(let (three (lambda (f) (lambda (z) (f (f (f z))))))
                 ((three add1) 0))""",
        ),
        _closed(
            "church-pairs",
            "Church-encoded pairs: construct, project, sum",
            """(let (pair (lambda (x) (lambda (y) (lambda (f) ((f x) y)))))
                 (let (fst (lambda (p) (p (lambda (a) (lambda (b) a)))))
                   (let (snd (lambda (q) (q (lambda (c) (lambda (d) d)))))
                     (let (pr ((pair 3) 4))
                       (+ (fst pr) (snd pr))))))""",
        ),
        _closed(
            "mini-evaluator",
            "Church-encoded expression interpreter evaluating "
            "(1+2)+(3+4) — the higher-order workload the paper's "
            "intro motivates",
            """(let (econst (lambda (n) (lambda (c) (lambda (a) (c n)))))
                 (let (eadd (lambda (l)
                              (lambda (r)
                                (lambda (c2) (lambda (a2) ((a2 l) r))))))
                   (let (ev (lambda (self)
                              (lambda (e)
                                ((e (lambda (n2) n2))
                                 (lambda (l2)
                                   (lambda (r2)
                                     (+ ((self self) l2)
                                        ((self self) r2))))))))
                     (let (e1 ((eadd ((eadd (econst 1)) (econst 2)))
                               ((eadd (econst 3)) (econst 4))))
                       ((ev ev) e1)))))""",
        ),
        _closed(
            "ackermann",
            "Ackermann A(2, 3) via self-application "
            "(blows up the syntactic-CPS analyzer)",
            """(let (ack (lambda (self)
                           (lambda (m)
                             (lambda (n)
                               (if0 m
                                 (add1 n)
                                 (if0 n
                                   (((self self) (- m 1)) 1)
                                   (((self self) (- m 1))
                                    (((self self) m) (- n 1)))))))))
                 (((ack ack) 2) 3))""",
            heavy=True,
        ),
    ]
}


def corpus_program(name: str) -> CorpusProgram:
    """Look up a corpus program by name."""
    try:
        return PROGRAMS[name]
    except KeyError:
        raise KeyError(
            f"unknown corpus program {name!r}; available: {sorted(PROGRAMS)}"
        ) from None


# ----------------------------------------------------------------------
# Parametric workload families (Section 6.2 experiments)
# ----------------------------------------------------------------------


def conditional_chain(k: int) -> CorpusProgram:
    """A chain of ``k`` conditionals on *independent* unknown tests.

    Every test stays unknown on every path, so the CPS analyzers
    duplicate the rest of the chain at each conditional — 2^k paths,
    the Section 6.2 exponential-cost workload.  The source shape
    (before normalization)::

        (let (a1 (if0 x1 1 2))
          (let (a2 (if0 x2 (+ a1 1) (+ a1 2)))
            ...
              ak))
    """
    if k < 1:
        raise ValueError("chain length must be >= 1")
    lines = ["(let (a1 (if0 x1 1 2))"]
    for i in range(2, k + 1):
        lines.append(
            f"(let (a{i} (if0 x{i} (+ a{i-1} 1) (+ a{i-1} 2)))"
        )
    body = f"a{k}" + ")" * k
    source = "\n".join(lines) + "\n" + body
    return CorpusProgram(
        name=f"conditional-chain-{k}",
        description=f"{k} independent unknown conditionals",
        term=_anf(source),
        initial=lambda lat: {
            f"x{i}": lat.of_num(lat.domain.top) for i in range(1, k + 1)
        },
    )


def top_conditional_chain(k: int, p_addend: int = 1) -> CorpusProgram:
    """A chain of ``k`` unknown conditionals whose branches *agree*.

    Both arms of every conditional return a value computed once from
    the same unknown ``y`` (``p = (+ y 1)`` vs ``q = (+ y 2)``, both ⊤
    under constant propagation), so the two duplicated continuations
    see identical stores.  The CPS analyzers still walk all 2^k paths
    — the duplication is syntactic — but the `repro.perf` eval cache
    collapses the redundant re-analyses to O(k): the memoization
    showcase workload.

    ``p_addend`` varies the constant in the ``p`` binding — an
    abstract-value-neutral one-sub-term edit (``p`` is ⊤ either way),
    which is exactly what the `repro.incr` incremental bench needs.
    """
    if k < 1:
        raise ValueError("chain length must be >= 1")
    lines = [f"(let (p (+ y {p_addend}))", "(let (q (+ y 2))"]
    for i in range(1, k + 1):
        lines.append(f"(let (a{i} (if0 x{i} p q))")
    body = f"a{k}" + ")" * (k + 2)
    source = "\n".join(lines) + "\n" + body
    return CorpusProgram(
        name=f"top-conditional-chain-{k}",
        description=f"{k} unknown conditionals with store-identical arms",
        term=_anf(source),
        initial=lambda lat: {
            "y": lat.of_num(lat.domain.top),
            **{
                f"x{i}": lat.of_num(lat.domain.top)
                for i in range(1, k + 1)
            },
        },
    )


def call_site_chain(k: int) -> CorpusProgram:
    """A chain of ``k`` calls to a two-closure variable.

    Each call site has two abstract callees, so the CPS analyzers
    duplicate the continuation twice per call — 2^k paths in total.
    """
    if k < 1:
        raise ValueError("chain length must be >= 1")
    lines = ["(let (a1 (f 0))"]
    for i in range(2, k + 1):
        lines.append(f"(let (a{i} (f a{i-1}))")
    body = f"a{k}" + ")" * k
    source = "\n".join(lines) + "\n" + body
    return CorpusProgram(
        name=f"call-site-chain-{k}",
        description=f"{k} calls of a two-closure function",
        term=_anf(source),
        initial=lambda lat: {
            "f": lat.of_clos(AbsClo("p0", Num(0)), AbsClo("p1", Num(1)))
        },
    )


def ackermann_open(addend: int = 1) -> CorpusProgram:
    """Ackermann applied to an *unknown* second argument.

    The argument is ``u = (+ y addend)`` with ``y`` bound to ⊤, so
    ``u`` is ⊤ for every ``addend``: changing the constant edits the
    program without changing any abstract value at the call site.
    That makes this the incremental-analysis showcase — the
    `repro.incr` store replays the whole recursive derivation after
    the edit, where the closed ``ackermann`` program (whose concrete
    argument flows into every judgment's entry store) cannot reuse
    anything.
    """
    source = f"""(let (ack (lambda (self)
                       (lambda (m)
                         (lambda (n)
                           (if0 m
                             (add1 n)
                             (if0 n
                               (((self self) (- m 1)) 1)
                               (((self self) (- m 1))
                                (((self self) m) (- n 1)))))))))
             (let (u (+ y {addend}))
               (((ack ack) 2) u)))"""
    return CorpusProgram(
        name=f"ackermann-open-{addend}",
        description=f"Ackermann A(2, y+{addend}) on an unknown y",
        term=_anf(source),
        initial=lambda lat: {"y": lat.of_num(lat.domain.top)},
        heavy=True,
    )


def loop_feeding_conditional(threshold: int) -> CorpusProgram:
    """The Section 6.2 computability workload.

    ``loop`` feeds every natural into a continuation that compares the
    value against ``threshold``.  The direct analysis returns ⊤-based
    facts immediately; the exact CPS analyses would need the
    undecidable infinite join (and a finite unrolling keeps changing
    its answer as the bound crosses ``threshold``).
    """
    source = f"""(let (i (loop))
                   (let (r (if0 (- i {threshold}) 111 222))
                     r))"""
    return CorpusProgram(
        name=f"loop-threshold-{threshold}",
        description=f"loop feeding a conditional with threshold {threshold}",
        term=_anf(source),
        initial=lambda lat: {},
    )


def loop_threshold_open(threshold: int = 10, addend: int = 1) -> CorpusProgram:
    """The `loop_feeding_conditional` workload with an edit knob.

    Like `ackermann_open`, ``addend`` is an abstract-value-neutral
    constant: the loop result feeds ``(+ i addend)`` with ``i`` already
    ⊤ (or cut, per analyzer loop mode), so ``u`` is the same abstract
    value for every ``addend`` — changing the constant is a
    one-sub-term edit that leaves every analyzer's answer intact.
    That makes the family the seed for the `repro.incr` edit-pair
    differential tests over the Section 6.2 computability workload.
    """
    source = f"""(let (i (loop))
                   (let (u (+ i {addend}))
                     (let (r (if0 (- u {threshold}) 111 222))
                       r)))"""
    return CorpusProgram(
        name=f"loop-threshold-open-{threshold}-{addend}",
        description=(
            f"loop feeding (+ i {addend}) into a threshold-{threshold} "
            "conditional (incremental edit knob)"
        ),
        term=_anf(source),
        initial=lambda lat: {},
    )


# ----------------------------------------------------------------------
# Discovery: the listing served by `python -m repro corpus` and the
# service's GET /v1/corpus, so clients can find valid program names
# without reading source.
# ----------------------------------------------------------------------

#: The parametric families, by name template.  Instantiations like
#: ``conditional-chain-8`` are built on demand by the generators; the
#: fixed-name corpus (`PROGRAMS`) is what the service accepts.
FAMILIES: dict[str, tuple] = {
    "conditional-chain-K": (
        conditional_chain,
        "K independent unknown conditionals (2^K-path CPS blowup)",
    ),
    "top-conditional-chain-K": (
        top_conditional_chain,
        "K unknown conditionals with store-identical arms (memo showcase)",
    ),
    "call-site-chain-K": (
        call_site_chain,
        "K calls of a two-closure function (2^K duplicated continuations)",
    ),
    "loop-threshold-T": (
        loop_feeding_conditional,
        "loop feeding a conditional with threshold T (Section 6.2)",
    ),
    "loop-threshold-open-T-D": (
        loop_threshold_open,
        "loop feeding (+ i D) into a threshold-T conditional "
        "(incremental edit knob)",
    ),
    "ackermann-open-D": (
        ackermann_open,
        "Ackermann A(2, y+D) on an unknown y (incremental showcase)",
    ),
}


def corpus_listing() -> dict:
    """A JSON-ready index of the corpus: fixed witness programs plus
    the parametric family templates."""
    return {
        "programs": [
            {
                "name": program.name,
                "description": program.description,
                "heavy": program.heavy,
            }
            for program in sorted(PROGRAMS.values(), key=lambda p: p.name)
        ],
        "families": [
            {"name": name, "description": description}
            for name, (_, description) in sorted(FAMILIES.items())
        ],
    }
