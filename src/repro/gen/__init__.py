"""Random program generation for property-based testing and sweeps."""

from repro.gen.random_terms import (
    FUN,
    NUM,
    random_closed_term,
    random_first_order_term,
    random_open_term,
    random_program,
)

__all__ = [
    "NUM",
    "FUN",
    "random_closed_term",
    "random_first_order_term",
    "random_open_term",
    "random_program",
]
