"""Seeded random generation of well-scoped, terminating A terms.

The generator produces *simply-typed* terms (numbers and first-order /
second-order function types), which guarantees termination of the
concrete interpreters — the source language has no recursion except
through self-application, which simple types rule out.  That makes the
generated programs suitable for differential testing of the three
interpreters (Lemmas 3.1 and 3.3) and for soundness tests of the
analyzers against concrete runs.

Types are represented as:

- ``NUM`` — the base type of numbers;
- ``FUN(a, b)`` — procedures from ``a`` to ``b``.

The generator is driven by a caller-supplied :class:`random.Random`,
so hypothesis can feed it seeds and shrink over them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Union

from repro.lang.ast import (
    App,
    If0,
    Lam,
    Let,
    Num,
    Prim,
    PrimApp,
    Term,
    Var,
)


@dataclass(frozen=True, slots=True)
class _NumType:
    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return "num"


@dataclass(frozen=True, slots=True)
class FunType:
    """The type of procedures from ``arg`` to ``result``."""

    arg: "Type"
    result: "Type"

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"({self.arg} -> {self.result})"


Type = Union[_NumType, FunType]

#: The base type of numbers.
NUM: Type = _NumType()


def FUN(arg: Type, result: Type) -> FunType:
    """Construct a function type."""
    return FunType(arg, result)


#: Function types the generator draws lambdas from.
_FUNCTION_TYPES = (
    FUN(NUM, NUM),
    FUN(NUM, FUN(NUM, NUM)),
    FUN(FUN(NUM, NUM), NUM),
)


class _Generator:
    def __init__(self, rng: random.Random, first_order: bool = False) -> None:
        self.rng = rng
        self.counter = 0
        #: restrict to numbers, arithmetic and conditionals (no lambdas
        #: or calls) — the fragment the classical dataflow frameworks
        #: of `repro.dataflow` handle exactly
        self.first_order = first_order

    def fresh(self, base: str) -> str:
        self.counter += 1
        return f"{base}{self.counter}"

    def gen(self, want: Type, env: dict[str, Type], depth: int) -> Term:
        """Generate a term of type ``want`` under ``env``."""
        rng = self.rng
        candidates = [name for name, ty in env.items() if ty == want]
        if depth <= 0:
            if want == NUM:
                if candidates and rng.random() < 0.5:
                    return Var(rng.choice(candidates))
                return Num(rng.randint(-5, 5))
            if candidates:
                return Var(rng.choice(candidates))
            return self._lambda(want, env, 0)

        roll = rng.random()
        if want == NUM:
            if self.first_order:
                # rebalance away from the higher-order constructions
                roll *= 0.8
            if roll < 0.12:
                return Num(rng.randint(-5, 5))
            if roll < 0.24 and candidates:
                return Var(rng.choice(candidates))
            if roll < 0.38:
                prim = Prim(rng.choice(("add1", "sub1")))
                return App(prim, self.gen(NUM, env, depth - 1))
            if roll < 0.52:
                op = rng.choice(("+", "-", "*"))
                return PrimApp(
                    op,
                    (
                        self.gen(NUM, env, depth - 1),
                        self.gen(NUM, env, depth - 1),
                    ),
                )
            if roll < 0.64:
                return If0(
                    self.gen(NUM, env, depth - 1),
                    self.gen(NUM, env, depth - 1),
                    self.gen(NUM, env, depth - 1),
                )
            if roll < 0.80:
                return self._let(want, env, depth)
            return self._call(want, env, depth)
        # function type requested
        if roll < 0.3 and candidates:
            return Var(rng.choice(candidates))
        if roll < 0.45:
            return self._let(want, env, depth)
        if roll < 0.55:
            return If0(
                self.gen(NUM, env, depth - 1),
                self.gen(want, env, depth - 1),
                self.gen(want, env, depth - 1),
            )
        return self._lambda(want, env, depth)

    def _lambda(self, want: Type, env: dict[str, Type], depth: int) -> Term:
        if want == NUM:
            # No lambda has type num; fall back to a literal.
            return Num(self.rng.randint(-5, 5))
        assert isinstance(want, FunType)
        param = self.fresh("x")
        body_env = dict(env)
        body_env[param] = want.arg
        if want == FUN(NUM, NUM) and self.rng.random() < 0.2:
            return Prim(self.rng.choice(("add1", "sub1")))
        return Lam(param, self.gen(want.result, body_env, max(depth - 1, 0)))

    def _let(self, want: Type, env: dict[str, Type], depth: int) -> Term:
        name = self.fresh("v")
        rhs_type = (
            NUM
            if self.first_order or self.rng.random() < 0.6
            else self.rng.choice(_FUNCTION_TYPES)
        )
        rhs = self.gen(rhs_type, env, depth - 1)
        body_env = dict(env)
        body_env[name] = rhs_type
        return Let(name, rhs, self.gen(want, body_env, depth - 1))

    def _call(self, want: Type, env: dict[str, Type], depth: int) -> Term:
        arg_type = NUM if self.rng.random() < 0.7 else FUN(NUM, NUM)
        fun = self.gen(FUN(arg_type, want), env, depth - 1)
        arg = self.gen(arg_type, env, depth - 1)
        return App(fun, arg)


def random_closed_term(
    rng: random.Random, max_depth: int = 5, want: Type = NUM
) -> Term:
    """Generate a closed, simply-typed (hence terminating) term.

    Args:
        rng: the randomness source (seed it for reproducibility).
        max_depth: recursion budget; terms grow roughly exponentially
            with it, so 4-6 is a practical range.
        want: the type of the generated term (default: a number).
    """
    return _Generator(rng).gen(want, {}, max_depth)


def random_first_order_term(
    rng: random.Random,
    max_depth: int = 5,
    free_numeric: tuple[str, ...] = ("in0", "in1"),
) -> Term:
    """Generate a first-order term: numbers, arithmetic, ``add1``/
    ``sub1`` applications and conditionals over unknown inputs — the
    fragment the classical dataflow frameworks of
    :mod:`repro.dataflow` model exactly."""
    env: dict[str, Type] = {name: NUM for name in free_numeric}
    return _Generator(rng, first_order=True).gen(NUM, env, max_depth)


def random_open_term(
    rng: random.Random,
    max_depth: int = 5,
    free_numeric: tuple[str, ...] = ("in0", "in1"),
    want: Type = NUM,
) -> Term:
    """Generate a simply-typed term with free numeric inputs.

    Unlike closed random programs — which an analysis folds completely,
    so all three analyzers trivially agree — open programs have
    statically unknown conditional tests and data, which is where the
    paper's phenomena (branch joins, duplication gains/losses) occur.
    The free variables have type ``num``; evaluate or analyze with an
    environment/initial store covering them.
    """
    env: dict[str, Type] = {name: NUM for name in free_numeric}
    return _Generator(rng).gen(want, env, max_depth)


def random_program(seed: int, max_depth: int = 5, want: Type = NUM) -> Term:
    """Generate a closed term from an integer seed (hypothesis-friendly)."""
    return random_closed_term(random.Random(seed), max_depth, want)
