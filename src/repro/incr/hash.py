"""Canonical Merkle hashing of ANF (and cps(A)) syntax trees.

Two layers, two jobs:

- **Structure digests** (`TermHasher`): a content digest of the
  *literal* sub-tree — names included — computed bottom-up and cached
  per node *object*, so after an edit that splices a new sub-term into
  a shared tree only the spine above the edit is re-hashed.  These are
  the keys of the persistent summary store: the analyzers' judgments
  are name-sensitive (stores map variable names), so the store must
  be too.
- **Alpha hashes** (`term_hash`): the public ETag-style hash exposed
  by ``/v1/analyze``.  Binders are canonicalized de-Bruijn-level
  style (each binder is renamed to ``#<n>`` where ``n`` counts the
  binders enclosing it; free variables keep their literal names), so
  alpha-equivalent programs hash equal.  Renaming by *level* rather
  than by de-Bruijn *index* keeps the canonicalization compositional:
  two binders at the same level can never shadow one another, and a
  reference resolves to the innermost enclosing definition exactly as
  the literal name would.

Both layers work generically over the frozen-dataclass ASTs of
`repro.lang.ast` and `repro.cps.ast`: children are the fields holding
(tuples of) AST nodes, scalars are everything else, and field order
is definition order, which is stable.
"""

from __future__ import annotations

import hashlib
import sys
from dataclasses import fields, replace as _dc_replace
from typing import Any, Iterator

from repro.cps import ast as cast
from repro.lang import ast as last

#: Bump when the hash layout changes: digests key the persistent
#: store, so a layout change must miss cleanly rather than collide.
HASH_SCHEMA = 1

#: Fields that *bind* a name (alpha canonicalization renames them and
#: the references they capture).  Everything else that is a ``str``
#: field is either a reference or an operator name.
_BINDER_FIELDS = {
    (last.Lam, "param"),
    (last.Let, "name"),
    (cast.CLam, "param"),
    (cast.CLam, "kparam"),
    (cast.KLam, "param"),
    (cast.CLet, "name"),
    (cast.CPrimLet, "name"),
    (cast.CIf0, "kvar"),
}

#: Fields that *reference* a name bound elsewhere.
_REF_FIELDS = {
    (last.Var, "name"),
    (cast.CVar, "name"),
    (cast.KApp, "kvar"),
}

_AST_TYPES = (
    last.Num, last.Var, last.Prim, last.Lam, last.App, last.Let,
    last.If0, last.PrimApp, last.Loop,
    cast.CNum, cast.CVar, cast.CPrim, cast.CLam, cast.KLam, cast.KApp,
    cast.CLet, cast.CApp, cast.CIf0, cast.CPrimLet, cast.CLoop,
)

_FIELD_CACHE: dict[type, tuple[str, ...]] = {}


def _field_names(node: Any) -> tuple[str, ...]:
    """Dataclass field names of ``node``'s type, definition order."""
    cls = type(node)
    cached = _FIELD_CACHE.get(cls)
    if cached is None:
        cached = tuple(f.name for f in fields(cls))
        _FIELD_CACHE[cls] = cached
    return cached


def node_children(node: Any) -> list[Any]:
    """The AST-node children of ``node``, in field order (tuples of
    nodes — `PrimApp.args` — are flattened in place)."""
    out: list[Any] = []
    for name in _field_names(node):
        value = getattr(node, name)
        if isinstance(value, _AST_TYPES):
            out.append(value)
        elif isinstance(value, tuple):
            out.extend(v for v in value if isinstance(v, _AST_TYPES))
    return out


def node_scalars(node: Any) -> tuple:
    """The non-node field values of ``node``, in field order."""
    out = []
    for name in _field_names(node):
        value = getattr(node, name)
        if isinstance(value, _AST_TYPES):
            continue
        if isinstance(value, tuple) and any(
            isinstance(v, _AST_TYPES) for v in value
        ):
            continue
        out.append(value)
    return tuple(out)


#: A position in a tree: the child index taken at each step.
Path = tuple[int, ...]


def child_at(node: Any, index: int) -> Any:
    """The ``index``-th AST child of ``node``."""
    return node_children(node)[index]


def resolve_path(root: Any, path: Path) -> Any:
    """The node at ``path`` under ``root``.

    Raises ``IndexError`` when the path walks off the tree (the tree
    changed shape since the path was recorded).
    """
    node = root
    for index in path:
        children = node_children(node)
        node = children[index]
    return node


def replace_at(root: Any, path: Path, replacement: Any) -> Any:
    """A copy of ``root`` with the node at ``path`` replaced.

    Only the spine above the edit is rebuilt; every unchanged sibling
    sub-tree is *shared* with ``root`` — which is exactly what makes
    spine-only rehashing pay off: a `TermHasher` that has seen the old
    tree only re-hashes the rebuilt spine nodes.
    """
    if not path:
        return replacement
    child = child_at(root, path[0])
    return _replace_child(
        root, path[0], replace_at(child, path[1:], replacement)
    )


def _replace_child(node: Any, index: int, new_child: Any) -> Any:
    """A copy of ``node`` with its ``index``-th AST child swapped."""
    i = 0
    for name in _field_names(node):
        value = getattr(node, name)
        if isinstance(value, _AST_TYPES):
            if i == index:
                return _dc_replace(node, **{name: new_child})
            i += 1
        elif isinstance(value, tuple):
            items = list(value)
            for j, item in enumerate(items):
                if isinstance(item, _AST_TYPES):
                    if i == index:
                        items[j] = new_child
                        return _dc_replace(node, **{name: tuple(items)})
                    i += 1
    raise IndexError(index)


def iter_nodes(root: Any) -> Iterator[tuple[Path, Any]]:
    """All ``(path, node)`` pairs under ``root``, preorder."""
    stack: list[tuple[Path, Any]] = [((), root)]
    while stack:
        path, node = stack.pop()
        yield path, node
        children = node_children(node)
        for i in range(len(children) - 1, -1, -1):
            stack.append((path + (i,), children[i]))


def _h(payload: bytes) -> bytes:
    return hashlib.sha256(payload).digest()[:20]


class TermHasher:
    """Merkle structure digests, cached per node object.

    The cache is keyed by ``id(node)``; the hasher pins every node it
    has hashed so ids cannot be recycled while the cache lives.  Use
    one hasher per program (or per store session) — sharing a tree
    between an old and an edited term means the unchanged sub-trees
    hit the cache and only the edited spine is re-hashed.
    """

    def __init__(self) -> None:
        self._cache: dict[int, bytes] = {}
        self._pins: list[Any] = []

    def digest(self, node: Any) -> bytes:
        """The 20-byte structure digest of ``node``."""
        cache = self._cache
        got = cache.get(id(node))
        if got is not None:
            return got
        # Iterative post-order: children before parents, no recursion
        # limit on deep let-spines.
        stack: list[tuple[Any, bool]] = [(node, False)]
        while stack:
            current, expanded = stack.pop()
            if id(current) in cache:
                continue
            children = node_children(current)
            if not expanded:
                stack.append((current, True))
                for child in children:
                    if id(child) not in cache:
                        stack.append((child, False))
                continue
            parts = [
                str(HASH_SCHEMA).encode(),
                type(current).__name__.encode(),
                repr(node_scalars(current)).encode(),
            ]
            for child in children:
                parts.append(cache[id(child)])
            cache[id(current)] = _h(b"\x00".join(parts))
            self._pins.append(current)
        return cache[id(node)]

    def hex(self, node: Any) -> str:
        """Hex form of :meth:`digest`."""
        return self.digest(node).hex()

    def __len__(self) -> int:
        return len(self._cache)


#: Process-wide hasher used by the convenience functions; safe because
#: digests are pure and the pin list keeps ids stable.
_SHARED = TermHasher()


def structure_digest(node: Any) -> bytes:
    """The literal (name-sensitive) structure digest of ``node``."""
    return _SHARED.digest(node)


def structure_hex(node: Any) -> str:
    """Hex form of :func:`structure_digest`."""
    return _SHARED.digest(node).hex()


# ----------------------------------------------------------------------
# Alpha-invariant hashing (the public term_hash)
# ----------------------------------------------------------------------

_ALPHA_CACHE: dict[int, str] = {}
_ALPHA_PINS: list[Any] = []

#: The alpha cache exists so repeated hashing of one long-lived term
#: is free; a server hashing a fresh term per request must not grow
#: it (and its id pins) without bound.
_ALPHA_CACHE_LIMIT = 4096


def _alpha_digest(node: Any, env: dict[str, str], level: int) -> bytes:
    cls = type(node)
    names = _field_names(node)
    parts = [type(node).__name__.encode()]
    child_env = env
    child_level = level
    # Binders first: every binder field of this node is renamed to the
    # same canonical level label (same-level binders cannot nest, so a
    # single label per node is unambiguous), and the extension is
    # visible to all child sub-terms.
    bound: dict[str, str] = {}
    for name in names:
        if (cls, name) in _BINDER_FIELDS:
            canonical = f"#{level}"
            bound[getattr(node, name)] = canonical
            parts.append(b"bind:" + canonical.encode())
            child_level = level + 1
    if bound:
        child_env = dict(env)
        child_env.update(bound)
    for name in names:
        value = getattr(node, name)
        if (cls, name) in _BINDER_FIELDS:
            continue
        if (cls, name) in _REF_FIELDS:
            parts.append(b"ref:" + env.get(value, value).encode())
        elif isinstance(value, _AST_TYPES):
            parts.append(_alpha_digest(value, child_env, child_level))
        elif isinstance(value, tuple) and any(
            isinstance(v, _AST_TYPES) for v in value
        ):
            for v in value:
                parts.append(_alpha_digest(v, child_env, child_level))
        else:
            parts.append(repr(value).encode())
    return _h(b"\x00".join(parts))


def term_hash(term: Any) -> str:
    """The alpha-invariant hash of a whole program, hex.

    This is the hash `/v1/analyze` echoes and matches against
    ``term_hash`` in requests (the ``If-None-Match`` fast path).
    Alpha-equivalent programs — same structure up to consistent
    renaming of bound variables — hash equal; free variables are
    compared literally because the analysis assumptions are keyed by
    their names.
    """
    got = _ALPHA_CACHE.get(id(term))
    if got is None:
        if len(_ALPHA_CACHE) >= _ALPHA_CACHE_LIMIT:
            _ALPHA_CACHE.clear()
            _ALPHA_PINS.clear()
        previous = sys.getrecursionlimit()
        if previous < 100_000:
            sys.setrecursionlimit(100_000)
        try:
            got = _alpha_digest(term, {}, 0).hex()
        finally:
            if previous < 100_000:
                sys.setrecursionlimit(previous)
        _ALPHA_CACHE[id(term)] = got
        _ALPHA_PINS.append(term)
    return got


# ----------------------------------------------------------------------
# Merkle diffing
# ----------------------------------------------------------------------


def merkle_diff(
    old: Any, new: Any, hasher: TermHasher | None = None
) -> list[Path]:
    """Paths (in ``new``) of the minimal dirty sub-trees.

    Descends both trees in lockstep; where digests agree the sub-trees
    are identical and the walk stops.  Where they disagree but the
    shapes still match, the walk recurses, so a single sub-term edit
    reports a single dirty path; a shape change reports the enclosing
    node.
    """
    hasher = hasher or _SHARED
    dirty: list[Path] = []
    stack: list[tuple[Path, Any, Any]] = [((), old, new)]
    while stack:
        path, a, b = stack.pop()
        if hasher.digest(a) == hasher.digest(b):
            continue
        ca, cb = node_children(a), node_children(b)
        if (
            type(a) is type(b)
            and len(ca) == len(cb)
            and node_scalars(a) == node_scalars(b)
        ):
            for i in range(len(ca)):
                stack.append((path + (i,), ca[i], cb[i]))
        else:
            dirty.append(path)
    dirty.sort()
    return dirty
