"""Persistent compiled-plan storage: the ``kind=plan`` entry class.

The plan compiler (`repro.machine.absplan`) is a pure function of the
program's literal structure, so its output can be cached *across
processes* exactly like the summary rows of `repro.incr.driver`: keyed
by the term's Merkle structure digest, stored in the same sqlite
`IncrStore` (same WAL, gc and generation machinery), and reloaded by a
freshly started serve worker instead of recompiled.

Three pieces:

- a **codec** (`encode_anf_plan` / `decode_anf_plan` and the cps(A)
  twins): base plans serialize to JSON with every AST-node reference
  replaced by the node's *structural preorder index* in the program —
  decode resolves indices against the caller's own term, so a plan
  saved by one process runs against the structurally-equal tree of
  another with no pickling of AST objects;
- a **tier** (`PlanPersistTier`): the disk layer `PlanCache` calls
  between its in-memory LRU and the compiler — ``load`` → ``compile``
  → ``save`` — with its own hit/miss/reject counters for
  ``/metricsz`` and ``cachectl stats``;
- a **key** (`plan_cfg`): the cfg string folds together the codec
  schema, the instruction-set schema (`ENGINE_SCHEMA`) and the hash
  schema, so any vocabulary change strands old rows unreachable (a
  clean miss, then gc) rather than decoding garbage.

Only *base* (unoptimized) plans are persisted: `optimize_anf_plan` is
cheap, depends on the engine schema, and interns against the decoded
entry tables, so the optimized tier is always derived in-process.

Decoding is defensive end to end: any malformed payload, stale index
or schema drift makes ``load`` return None and the caller falls
through to the compiler — a corrupt row can cost a recompile, never a
wrong answer.
"""

from __future__ import annotations

import json
import threading

from repro.analysis.common import (
    A_DEC,
    A_DECK,
    A_INC,
    A_INCK,
    A_STOP,
    AbsClo,
    AbsCo,
    AbsCpsClo,
)
from repro.incr.hash import HASH_SCHEMA, TermHasher, node_children
from repro.incr.store import KIND_PLAN, IncrStore
from repro.machine.absplan import ENGINE_SCHEMA, AnfPlan, CpsPlan

#: Bump when the serialized layout below changes.
PLAN_CODEC_SCHEMA = 1

#: Abort encode/decode when the structural preorder walk exceeds this
#: many visits (heavily shared trees unfold combinatorially; such
#: programs simply stay compile-only).
_WALK_LIMIT = 1_000_000

#: Reset the tier's hasher once its pin cache grows past this many
#: nodes (long-lived serve workers hash a stream of fresh terms).
_HASHER_LIMIT = 500_000

_TAGS = {tag.tag: tag for tag in (A_INC, A_DEC, A_INCK, A_DECK)}


def plan_cfg() -> str:
    """The store cfg string: one schema bump anywhere → clean miss."""
    return f"plan/{PLAN_CODEC_SCHEMA}/{ENGINE_SCHEMA}/{HASH_SCHEMA}"


# ----------------------------------------------------------------------
# Structural preorder indexing
# ----------------------------------------------------------------------
#
# A node is named by the index of its first occurrence in the
# *structural* preorder walk (every path is visited, so the numbering
# depends only on the tree's shape, never on object sharing — the
# saving and loading processes may share sub-terms differently).


def _index_of_nodes(root) -> "dict[int, int] | None":
    """``id(node) -> first structural preorder index`` for every node
    under ``root``, or None when the walk exceeds `_WALK_LIMIT`."""
    index_of: dict[int, int] = {}
    count = 0
    stack = [root]
    while stack:
        node = stack.pop()
        if count >= _WALK_LIMIT:
            return None
        if id(node) not in index_of:
            index_of[id(node)] = count
        count += 1
        stack.extend(reversed(node_children(node)))
    return index_of


def _nodes_at(root, wanted: set) -> "dict[int, object] | None":
    """``index -> node`` for the requested structural preorder
    indices, or None when an index is out of range (shape mismatch)."""
    found: dict[int, object] = {}
    count = 0
    stack = [root]
    while stack and len(found) < len(wanted):
        node = stack.pop()
        if count >= _WALK_LIMIT:
            return None
        if count in wanted:
            found[count] = node
        count += 1
        stack.extend(reversed(node_children(node)))
    if len(found) < len(wanted):
        return None
    return found


# ----------------------------------------------------------------------
# Codec
# ----------------------------------------------------------------------


def encode_anf_plan(plan: AnfPlan, root) -> "str | None":
    """Serialize a *base* `AnfPlan` compiled from ``root``, or None
    when the plan is not serializable (optimized, or the walk blew the
    limit)."""
    if plan.optimized:
        return None
    index_of = _index_of_nodes(root)
    if index_of is None:
        return None
    try:
        consts = []
        for desc in plan.consts:
            if desc[0] == "clo":
                consts.append(["clo", index_of[id(desc[1])]])
            else:
                consts.append(list(desc))
        payload = {
            "schema": PLAN_CODEC_SCHEMA,
            "engine": ENGINE_SCHEMA,
            "kind": "anf",
            "entry_pc": plan.entry_pc,
            "code": [list(instr) for instr in plan.code],
            "terms": [index_of[id(t)] for t in plan.terms],
            "slot_names": list(plan.slot_names),
            "consts": consts,
            "entries": [
                [clo.param, index_of[id(clo.body)], pslot, bpc]
                for clo, (pslot, bpc) in plan.entries.items()
            ],
            "cl_top": [
                ["tag", member.tag]
                if not isinstance(member, AbsClo)
                else ["clo", member.param, index_of[id(member.body)]]
                for member in plan.cl_top
            ],
            "free_names": sorted(plan.free_names),
        }
    except KeyError:
        # A plan node that is not a sub-term of ``root`` — only
        # possible for extension arrays, which are never persisted.
        return None
    return json.dumps(payload, separators=(",", ":"))


def encode_cps_plan(plan: CpsPlan, root) -> "str | None":
    """Serialize a *base* `CpsPlan` compiled from ``root``."""
    if plan.optimized:
        return None
    index_of = _index_of_nodes(root)
    if index_of is None:
        return None
    try:
        consts = []
        for desc in plan.consts:
            if desc[0] in ("cps_clo", "konts"):
                consts.append([desc[0], index_of[id(desc[1])]])
            else:
                consts.append(list(desc))
        payload = {
            "schema": PLAN_CODEC_SCHEMA,
            "engine": ENGINE_SCHEMA,
            "kind": "cps",
            "entry_pc": plan.entry_pc,
            "code": [list(instr) for instr in plan.code],
            "terms": [index_of[id(t)] for t in plan.terms],
            "slot_names": list(plan.slot_names),
            "consts": consts,
            "cps_entries": [
                [clo.param, clo.kparam, index_of[id(clo.body)], ps, ks, bpc]
                for clo, (ps, ks, bpc) in plan.cps_entries.items()
            ],
            "kont_entries": [
                [co.param, index_of[id(co.body)], ps, bpc]
                for co, (ps, bpc) in plan.kont_entries.items()
            ],
            "cl_top": [
                ["tag", member.tag]
                if not isinstance(member, AbsCpsClo)
                else [
                    "clo",
                    member.param,
                    member.kparam,
                    index_of[id(member.body)],
                ]
                for member in plan.cl_top
            ],
            "k_top": [
                ["stop"]
                if member == A_STOP
                else ["co", member.param, index_of[id(member.body)]]
                for member in plan.k_top
            ],
        }
    except KeyError:
        return None
    return json.dumps(payload, separators=(",", ":"))


def _wanted_indices(payload: dict) -> set:
    wanted = set(payload["terms"])
    for desc in payload["consts"]:
        if desc[0] in ("clo", "cps_clo", "konts"):
            wanted.add(desc[-1])
    for row in payload.get("entries", ()):
        wanted.add(row[1])
    for row in payload.get("cps_entries", ()):
        wanted.add(row[2])
    for row in payload.get("kont_entries", ()):
        wanted.add(row[1])
    for member in payload["cl_top"]:
        if member[0] == "clo":
            wanted.add(member[-1])
    for member in payload.get("k_top", ()):
        if member[0] == "co":
            wanted.add(member[-1])
    return wanted


def decode_anf_plan(payload_text: str, root) -> "AnfPlan | None":
    """Rebuild an `AnfPlan` against the caller's ``root`` term, or
    None on any mismatch (the caller recompiles)."""
    try:
        payload = json.loads(payload_text)
        if (
            payload.get("schema") != PLAN_CODEC_SCHEMA
            or payload.get("engine") != ENGINE_SCHEMA
            or payload.get("kind") != "anf"
        ):
            return None
        nodes = _nodes_at(root, _wanted_indices(payload))
        if nodes is None:
            return None
        consts = tuple(
            ("clo", nodes[desc[1]]) if desc[0] == "clo" else tuple(desc)
            for desc in payload["consts"]
        )
        entries = {
            AbsClo(param, nodes[body]): (pslot, bpc)
            for param, body, pslot, bpc in payload["entries"]
        }
        cl_top = frozenset(
            _TAGS[member[1]]
            if member[0] == "tag"
            else AbsClo(member[1], nodes[member[2]])
            for member in payload["cl_top"]
        )
        slot_names = tuple(payload["slot_names"])
        return AnfPlan(
            payload["entry_pc"],
            tuple(tuple(instr) for instr in payload["code"]),
            tuple(nodes[i] for i in payload["terms"]),
            slot_names,
            {name: i for i, name in enumerate(slot_names)},
            consts,
            entries,
            cl_top,
            frozenset(payload["free_names"]),
        )
    except Exception:
        return None


def decode_cps_plan(payload_text: str, root) -> "CpsPlan | None":
    """Rebuild a `CpsPlan` against the caller's ``root`` term."""
    try:
        payload = json.loads(payload_text)
        if (
            payload.get("schema") != PLAN_CODEC_SCHEMA
            or payload.get("engine") != ENGINE_SCHEMA
            or payload.get("kind") != "cps"
        ):
            return None
        nodes = _nodes_at(root, _wanted_indices(payload))
        if nodes is None:
            return None
        consts = tuple(
            (desc[0], nodes[desc[1]])
            if desc[0] in ("cps_clo", "konts")
            else tuple(desc)
            for desc in payload["consts"]
        )
        cps_entries = {
            AbsCpsClo(param, kparam, nodes[body]): (ps, ks, bpc)
            for param, kparam, body, ps, ks, bpc in payload["cps_entries"]
        }
        kont_entries = {
            AbsCo(param, nodes[body]): (ps, bpc)
            for param, body, ps, bpc in payload["kont_entries"]
        }
        cl_top = frozenset(
            _TAGS[member[1]]
            if member[0] == "tag"
            else AbsCpsClo(member[1], member[2], nodes[member[3]])
            for member in payload["cl_top"]
        )
        k_top = frozenset(
            A_STOP
            if member[0] == "stop"
            else AbsCo(member[1], nodes[member[2]])
            for member in payload["k_top"]
        )
        slot_names = tuple(payload["slot_names"])
        return CpsPlan(
            payload["entry_pc"],
            tuple(tuple(instr) for instr in payload["code"]),
            tuple(nodes[i] for i in payload["terms"]),
            slot_names,
            {name: i for i, name in enumerate(slot_names)},
            consts,
            cps_entries,
            kont_entries,
            cl_top,
            k_top,
        )
    except Exception:
        return None


# ----------------------------------------------------------------------
# The persistent tier
# ----------------------------------------------------------------------


class PlanPersistTier:
    """The disk layer between `PlanCache` and the compilers.

    Wraps an `IncrStore` handle; thread-safe (the serve worker pool
    shares one tier).  ``load``/``save`` take the *base* plan kind
    (``"anf"`` / ``"cps"``) and the program root; the structure digest
    of the root is the store subject.
    """

    def __init__(self, store: IncrStore) -> None:
        self.store = store
        self._lock = threading.Lock()
        self._hasher = TermHasher()
        self.loads = 0
        self.misses = 0
        self.saves = 0
        self.rejects = 0

    def _subject(self, term) -> str:
        with self._lock:
            # The hasher pins every node it has digested; a long-lived
            # worker hashing a stream of fresh programs must shed it.
            if len(self._hasher) > _HASHER_LIMIT:
                self._hasher = TermHasher()
            return self._hasher.hex(term)

    def load(self, kind: str, term):
        """The stored plan for ``term``, decoded against ``term``
        itself, or None (miss, or undecodable row)."""
        payload = self.store.get(
            plan_cfg(), KIND_PLAN, self._subject(term), kind
        )
        if payload is None:
            with self._lock:
                self.misses += 1
            return None
        decode = decode_anf_plan if kind == "anf" else decode_cps_plan
        plan = decode(payload, term)
        with self._lock:
            if plan is None:
                # Undecodable against a digest-equal term: treat as a
                # miss; the recompile's save overwrites the bad row.
                self.rejects += 1
                self.misses += 1
            else:
                self.loads += 1
        return plan

    def save(self, kind: str, term, plan) -> bool:
        """Persist a freshly compiled base plan; False when the plan
        is not serializable."""
        encode = encode_anf_plan if kind == "anf" else encode_cps_plan
        payload = encode(plan, term)
        if payload is None:
            with self._lock:
                self.rejects += 1
            return False
        self.store.put(
            plan_cfg(), KIND_PLAN, self._subject(term), kind, payload
        )
        with self._lock:
            self.saves += 1
        return True

    def snapshot(self) -> dict:
        """Counters for ``/metricsz`` / shard stats / tests."""
        with self._lock:
            return {
                "cfg": plan_cfg(),
                "loads": self.loads,
                "misses": self.misses,
                "saves": self.saves,
                "rejects": self.rejects,
            }


def attach_plan_store(store: "IncrStore | None") -> "PlanPersistTier | None":
    """Point the process-wide `PLAN_CACHE` at ``store`` (None
    detaches), returning the attached tier."""
    from repro.machine.absplan import PLAN_CACHE

    tier = PlanPersistTier(store) if store is not None else None
    PLAN_CACHE.attach_persist(tier)
    return tier


__all__ = [
    "PLAN_CODEC_SCHEMA",
    "plan_cfg",
    "encode_anf_plan",
    "encode_cps_plan",
    "decode_anf_plan",
    "decode_cps_plan",
    "PlanPersistTier",
    "attach_plan_store",
]
