"""The persistent, content-addressed summary store.

A single sqlite file (stdlib only) in WAL mode, safe under the
multi-process shard model: WAL gives many concurrent readers plus one
writer, writers queue on ``busy_timeout``, and every write happens in
one short transaction.  Rows are keyed by
``(config × kind × subject digest × judgment digest)`` where the
config digest folds in analyzer, domain, k, engine, cache flags, the
codec schema, and the analyzer's top-value digest (see
`repro.incr.codec`).

The header is schema-versioned: opening a store written by a
different layout drops and recreates it (content-addressed caches
lose nothing but warmth).  A monotone **generation** counter bumps on
every gc and every schema recreation; the serve layer folds it into
its volatile response-cache keys so an on-disk invalidation can never
be papered over by a stale in-memory entry.
"""

from __future__ import annotations

import os
import sqlite3
import threading
import time
from dataclasses import dataclass

#: Bump to invalidate every existing store file.
STORE_SCHEMA = 1

#: Row kinds.
KIND_SUB = "sub"  #: one memo-frame summary
KIND_RESPONSE = "resp"  #: a serve-layer response body
KIND_PLAN = "plan"  #: a serialized compiled plan (repro.incr.plans)

_BUSY_TIMEOUT_MS = 5_000


@dataclass
class StoreStats:
    """Runtime counters for one `IncrStore` handle."""

    hits: int = 0
    misses: int = 0
    stale_rejections: int = 0
    puts: int = 0
    errors: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stale_rejections": self.stale_rejections,
            "puts": self.puts,
            "errors": self.errors,
        }


class IncrStore:
    """A handle on the persistent summary store.

    Handles are cheap and per-process (sqlite connections must not
    cross ``fork``); every shard opens its own against the same path.
    """

    def __init__(self, path: str, max_bytes: int | None = None) -> None:
        self.path = path
        self.max_bytes = max_bytes
        self.stats = StoreStats()
        self._lock = threading.Lock()
        self._generation_cache: int | None = None
        self._data_version: int | None = None
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._db = sqlite3.connect(path, check_same_thread=False)
        self._db.execute(f"PRAGMA busy_timeout={_BUSY_TIMEOUT_MS}")
        self._db.execute("PRAGMA journal_mode=WAL")
        self._db.execute("PRAGMA synchronous=NORMAL")
        self._ensure_schema()

    # -- schema ----------------------------------------------------------

    def _ensure_schema(self) -> None:
        with self._lock, self._db as db:
            db.execute(
                "CREATE TABLE IF NOT EXISTS meta"
                " (key TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )
            row = db.execute(
                "SELECT value FROM meta WHERE key='schema'"
            ).fetchone()
            if row is not None and int(row[0]) == STORE_SCHEMA:
                self._create_tables(db)
                return
            # Unversioned, or written by another layout: start clean.
            db.execute("DROP TABLE IF EXISTS summaries")
            self._create_tables(db)
            db.execute(
                "INSERT OR REPLACE INTO meta VALUES ('schema', ?)",
                (str(STORE_SCHEMA),),
            )
            if row is not None:
                self._bump_generation(db)

    @staticmethod
    def _create_tables(db: sqlite3.Connection) -> None:
        db.execute(
            "CREATE TABLE IF NOT EXISTS summaries ("
            " cfg TEXT NOT NULL,"
            " kind TEXT NOT NULL,"
            " subject TEXT NOT NULL,"
            " judgment TEXT NOT NULL,"
            " payload TEXT NOT NULL,"
            " created REAL NOT NULL,"
            " last_used REAL NOT NULL,"
            " PRIMARY KEY (cfg, kind, subject, judgment))"
        )
        db.execute(
            "CREATE INDEX IF NOT EXISTS summaries_lru"
            " ON summaries (last_used)"
        )
        db.execute(
            "INSERT OR IGNORE INTO meta VALUES ('generation', '0')"
        )
        db.execute("INSERT OR IGNORE INTO meta VALUES ('gc_runs', '0')")

    @staticmethod
    def _bump_generation(db: sqlite3.Connection) -> None:
        db.execute(
            "UPDATE meta SET value = CAST(value AS INTEGER) + 1"
            " WHERE key='generation'"
        )

    # -- reads -----------------------------------------------------------

    def get(
        self, cfg: str, kind: str, subject: str, judgment: str
    ) -> str | None:
        """One payload, or None; counts a hit or miss."""
        with self._lock:
            row = self._db.execute(
                "SELECT payload FROM summaries"
                " WHERE cfg=? AND kind=? AND subject=? AND judgment=?",
                (cfg, kind, subject, judgment),
            ).fetchone()
        if row is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._touch([(cfg, kind, subject, judgment)])
        return row[0]

    def load(
        self, cfg: str, kind: str, subjects: list[str]
    ) -> dict[tuple[str, str], str]:
        """Preload every row for ``cfg``/``kind`` whose subject digest
        is in ``subjects`` — the incremental driver's working set.
        Returns ``{(subject, judgment): payload}``."""
        out: dict[tuple[str, str], str] = {}
        chunk = 400
        with self._lock:
            for start in range(0, len(subjects), chunk):
                batch = subjects[start : start + chunk]
                marks = ",".join("?" * len(batch))
                rows = self._db.execute(
                    "SELECT subject, judgment, payload FROM summaries"
                    f" WHERE cfg=? AND kind=? AND subject IN ({marks})",
                    [cfg, kind, *batch],
                ).fetchall()
                for subject, judgment, payload in rows:
                    out[(subject, judgment)] = payload
        return out

    def _touch(self, keys: list[tuple[str, str, str, str]]) -> None:
        now = time.time()
        try:
            with self._lock, self._db as db:
                db.executemany(
                    "UPDATE summaries SET last_used=?"
                    " WHERE cfg=? AND kind=? AND subject=? AND judgment=?",
                    [(now, *key) for key in keys],
                )
        except sqlite3.OperationalError:
            self.stats.errors += 1

    # -- writes ----------------------------------------------------------

    def put(
        self, cfg: str, kind: str, subject: str, judgment: str, payload: str
    ) -> None:
        self.put_many([(cfg, kind, subject, judgment, payload)])

    def put_many(
        self, rows: list[tuple[str, str, str, str, str]]
    ) -> None:
        """Insert rows in one transaction (idempotent: same key, same
        content — ``INSERT OR REPLACE`` keeps retries safe)."""
        if not rows:
            return
        now = time.time()
        try:
            with self._lock, self._db as db:
                db.executemany(
                    "INSERT OR REPLACE INTO summaries VALUES"
                    " (?, ?, ?, ?, ?, ?, ?)",
                    [(*row, now, now) for row in rows],
                )
            self.stats.puts += len(rows)
        except sqlite3.OperationalError:
            self.stats.errors += 1

    def touch_used(self, keys: list[tuple[str, str, str, str]]) -> None:
        """Batch-refresh ``last_used`` for keys served from a preload."""
        if keys:
            self._touch(keys)

    # -- meta ------------------------------------------------------------

    def generation(self, refresh: bool = False) -> int:
        """The invalidation generation.

        Cached per handle; ``PRAGMA data_version`` (cheap — no row
        reads) detects commits by *other* connections, so a gc run in
        another shard is noticed without re-reading meta per request.
        """
        with self._lock:
            version = self._db.execute(
                "PRAGMA data_version"
            ).fetchone()[0]
            if (
                not refresh
                and self._generation_cache is not None
                and version == self._data_version
            ):
                return self._generation_cache
            row = self._db.execute(
                "SELECT value FROM meta WHERE key='generation'"
            ).fetchone()
            self._generation_cache = int(row[0]) if row else 0
            self._data_version = version
            return self._generation_cache

    def _meta_int(self, key: str) -> int:
        row = self._db.execute(
            "SELECT value FROM meta WHERE key=?", (key,)
        ).fetchone()
        return int(row[0]) if row else 0

    # -- stats and gc ----------------------------------------------------

    def file_bytes(self) -> int:
        """Bytes on disk (main file + WAL)."""
        total = 0
        for suffix in ("", "-wal", "-shm"):
            try:
                total += os.path.getsize(self.path + suffix)
            except OSError:
                pass
        return total

    def summary(self) -> dict:
        """Store-wide stats: disk + this handle's runtime counters."""
        with self._lock:
            entries = self._db.execute(
                "SELECT kind, COUNT(*), COALESCE(SUM(LENGTH(payload)), 0)"
                " FROM summaries GROUP BY kind"
            ).fetchall()
            gc_runs = self._meta_int("gc_runs")
        by_kind = {
            kind: {"entries": count, "payload_bytes": size}
            for kind, count, size in entries
        }
        return {
            "path": self.path,
            "schema": STORE_SCHEMA,
            "generation": self.generation(),
            "gc_runs": gc_runs,
            "bytes": self.file_bytes(),
            "entries": sum(e["entries"] for e in by_kind.values()),
            "by_kind": by_kind,
            **self.stats.as_dict(),
        }

    def gc(self, max_bytes: int | None = None) -> dict:
        """Evict least-recently-used rows until the payload total is
        under ``max_bytes`` (0 clears everything), then bump the
        generation so volatile caches keyed on it invalidate."""
        limit = self.max_bytes if max_bytes is None else max_bytes
        evicted = 0
        with self._lock, self._db as db:
            if limit is not None:
                while True:
                    total = db.execute(
                        "SELECT COALESCE(SUM(LENGTH(payload)), 0)"
                        " FROM summaries"
                    ).fetchone()[0]
                    if total <= limit:
                        break
                    cursor = db.execute(
                        "DELETE FROM summaries WHERE rowid IN ("
                        " SELECT rowid FROM summaries"
                        " ORDER BY last_used ASC LIMIT 256)"
                    )
                    if cursor.rowcount <= 0:
                        break
                    evicted += cursor.rowcount
            db.execute(
                "UPDATE meta SET value = CAST(value AS INTEGER) + 1"
                " WHERE key='gc_runs'"
            )
            self._bump_generation(db)
        self._generation_cache = None
        try:
            self._db.execute("VACUUM")
        except sqlite3.OperationalError:
            self.stats.errors += 1
        with self._lock:
            remaining = self._db.execute(
                "SELECT COALESCE(SUM(LENGTH(payload)), 0) FROM summaries"
            ).fetchone()[0]
        return {
            "evicted": evicted,
            "bytes": remaining,
            "generation": self.generation(True),
        }

    def close(self) -> None:
        try:
            self._db.close()
        except sqlite3.Error:
            pass

    def __enter__(self) -> "IncrStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def open_store(
    path: str | None, max_bytes: int | None = None
) -> IncrStore | None:
    """Open ``path`` as an `IncrStore`, or None when ``path`` is None.

    Never raises: a store that cannot be opened (corrupt file,
    permissions) is reported as None so analysis proceeds uncached.
    """
    if path is None:
        return None
    try:
        return IncrStore(path, max_bytes=max_bytes)
    except sqlite3.Error:
        return None


def describe(path: str) -> dict:
    """`cachectl stats` helper: open read-only-ish and summarize."""
    store = IncrStore(path)
    try:
        return store.summary()
    finally:
        store.close()


def _format_bytes(n: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024
    return f"{n}B"


def render_stats(summary: dict) -> str:
    """Human-readable `cachectl stats` output."""
    lines = [
        f"store     {summary['path']}",
        f"schema    {summary['schema']}   generation {summary['generation']}"
        f"   gc_runs {summary['gc_runs']}",
        f"disk      {_format_bytes(summary['bytes'])}"
        f"   entries {summary['entries']}",
    ]
    for kind, info in sorted(summary.get("by_kind", {}).items()):
        lines.append(
            f"  {kind:<6} {info['entries']:>8} entries"
            f"  {_format_bytes(info['payload_bytes'])}"
        )
    lines.append(
        "session   hits {hits}  misses {misses}  stale {stale_rejections}"
        "  puts {puts}  errors {errors}".format(**summary)
    )
    return "\n".join(lines)


__all__ = [
    "IncrStore",
    "StoreStats",
    "STORE_SCHEMA",
    "KIND_SUB",
    "KIND_RESPONSE",
    "KIND_PLAN",
    "open_store",
    "describe",
    "render_stats",
]
