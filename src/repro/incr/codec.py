"""Encoding analysis judgments and answers for the persistent store.

A persisted summary must survive two hostile boundaries:

- **Process death.** Nothing that depends on object identity —
  ``id()``-keyed memo keys, interned stores, cached hashes — can be
  written to disk.  Summaries are serialized as JSON token trees whose
  only node references are *content digests plus positions*.
- **Program edits.** A summary recorded against one program object
  tree is replayed against a different one.  Replaying must hand the
  analyzer the *exact node objects of the new program* (the analyzers
  key their active paths and memos on object identity), so every node
  reference is resolved against the probe-time judgment: relative to
  the judgment's own sub-term (``rel``), through a closure found in
  the judgment's entry store (``sref``), or through a continuation
  frame of the judgment's kont (``kref``).  A reference that cannot
  be resolved that way makes the summary unusable here and the entry
  is skipped — never guessed.

Soundness inherits from PR 2's eval-memo argument: a summary is
persisted exactly when the in-memory memo stored it (the taint check
passed, so the answer was derived without consulting the judgment's
context), and its key carries everything the answer can depend on —
sub-term structure, the entire entry store, the kont, and the
analyzer's program-global top value (loop cuts inject it).  The
footprint travels as a set of *node digests*; a probe rejects a
persisted summary when any digest matches a node on the active path.
That is an over-approximation of PR 2's exact judgment-key check —
over-rejection only costs work (the analyzer recomputes, which is
bit-identical by the memo invariant), never correctness.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Hashable, Iterator, Mapping

from repro.analysis.common import (
    A_DEC,
    A_DECK,
    A_INC,
    A_INCK,
    A_STOP,
    AAnswer,
    AbsClo,
    AbsCo,
    AbsCpsClo,
    AFrame,
    AnalysisStats,
)
from repro.domains import constprop, interval, parity, sign, unit
from repro.domains.absval import AbsVal
from repro.domains.store import AbsStore
from repro.incr.hash import Path, TermHasher, iter_nodes, resolve_path

#: Layout version of everything this module writes; folded into every
#: store key so a codec change invalidates cleanly.
CODEC_SCHEMA = 1


class Unencodable(Exception):
    """The value cannot be represented portably; skip the entry."""


# ----------------------------------------------------------------------
# Domain elements
# ----------------------------------------------------------------------

_SINGLETONS: tuple[tuple[str, Any], ...] = (
    ("cp.bot", constprop.BOT),
    ("cp.top", constprop.TOP),
    ("iv.bot", interval.INT_BOT),
    ("par.bot", parity.PAR_BOT),
    ("par.even", parity.EVEN),
    ("par.odd", parity.ODD),
    ("par.top", parity.PAR_TOP),
    ("sg.bot", sign.SIGN_BOT),
    ("sg.neg", sign.NEG),
    ("sg.zero", sign.ZERO),
    ("sg.pos", sign.POS),
    ("sg.top", sign.SIGN_TOP),
    ("un.bot", unit.UNIT_BOT),
    ("un.top", unit.UNIT_TOP),
)
_SINGLETON_BY_ID = {id(obj): name for name, obj in _SINGLETONS}
_SINGLETON_BY_NAME = {name: obj for name, obj in _SINGLETONS}


def elem_token(elem: Hashable) -> Any:
    """A JSON token for a domain element.

    Domains compare their extremes by identity (``a is TOP``), so the
    decoder must hand back the module singletons — elements are
    encoded by *registry name*, never pickled.
    """
    name = _SINGLETON_BY_ID.get(id(elem))
    if name is not None:
        return ["s", name]
    if type(elem) is int:
        return ["i", elem]
    if isinstance(elem, interval.Interval):
        return ["iv", elem.lo, elem.hi]
    raise Unencodable(f"domain element {elem!r}")


def elem_decode(token: Any) -> Hashable:
    """Inverse of :func:`elem_token`."""
    kind = token[0]
    if kind == "s":
        return _SINGLETON_BY_NAME[token[1]]
    if kind == "i":
        return token[1]
    if kind == "iv":
        return interval.Interval(token[1], token[2])
    raise Unencodable(f"element token {token!r}")


def domain_token(domain: Any) -> str:
    """A stable identifier for a domain configuration."""
    token = domain.name
    bound = getattr(domain, "bound", None)
    if bound is not None:
        token += f"/{bound}"
    return token


# ----------------------------------------------------------------------
# Node tables
# ----------------------------------------------------------------------


class NodeTable:
    """Positions and digests for every node an analysis can judge.

    Roots are the program tree plus the body of every closure (or
    continuation) in the initial store — together they cover every
    node any derivation can reach, since new closures are only ever
    built from nodes of those trees.  Node objects are pinned so the
    ``id()``-keyed lookups stay stable for the table's lifetime.
    """

    def __init__(self, hasher: TermHasher | None = None) -> None:
        self.hasher = hasher or TermHasher()
        #: id(node) -> (root index, path, node)
        self.by_id: dict[int, tuple[int, Path, Any]] = {}
        self.roots: list[Any] = []

    def add_root(self, root: Any) -> int:
        """Index ``root``'s sub-tree; returns its root index."""
        index = len(self.roots)
        self.roots.append(root)
        for path, node in iter_nodes(root):
            # First position wins: with hash-consed sharing a node can
            # appear at several positions, and any stable one will do
            # for digesting; identity-sensitive resolution never goes
            # through by_id alone.
            self.by_id.setdefault(id(node), (index, path, node))
        return index

    def add_store_roots(self, store: AbsStore) -> None:
        """Index the closure/kont bodies of an initial store."""
        for _, value in sorted(
            store.items(), key=lambda item: str(item[0])
        ):
            for clo in _closures_of_value(value):
                body = getattr(clo, "body", None)
                if body is not None and id(body) not in self.by_id:
                    self.add_root(body)

    def digest_of_id(self, node_id: int) -> str | None:
        """Hex structure digest for a node id the table knows."""
        info = self.by_id.get(node_id)
        if info is None:
            return None
        return self.hasher.hex(info[2])

    def node_of_id(self, node_id: int) -> Any | None:
        info = self.by_id.get(node_id)
        return None if info is None else info[2]


def _closures_of_value(value: AbsVal) -> Iterator[Hashable]:
    yield from value.clos
    yield from value.konts


# ----------------------------------------------------------------------
# The judgment codec
# ----------------------------------------------------------------------

_KONT_KINDS = ("semantic-cps",)


class JudgmentCodec:
    """Per-analyzer-run encoder/decoder for judgments and answers."""

    def __init__(self, analyzer: Any, table: NodeTable) -> None:
        self.analyzer = analyzer
        self.kind = analyzer.analyzer_name
        self.table = table
        self.hasher = table.hasher
        self.lattice = analyzer.lattice
        self._store_digests: dict[AbsStore, str] = {}
        self._kont_digests: dict[tuple, str] = {}
        self._clo_digests: dict[int, str] = {}
        self.top_hex = self._top_digest()

    # -- configuration ---------------------------------------------------

    def config_token(self) -> dict:
        """Everything the answer semantics depend on besides the
        judgment itself (folded into every store key)."""
        analyzer = self.analyzer
        token = {
            "codec": CODEC_SCHEMA,
            "analyzer": self.kind,
            "domain": domain_token(self.lattice.domain),
            "engine": "tree",
            "intern": bool(analyzer.perf_config.intern),
            "join_memo": bool(analyzer.perf_config.join_memo),
            "top": self.top_hex,
        }
        k = getattr(analyzer, "k", None)
        if k is not None:
            token["k"] = k
        loop_mode = getattr(analyzer, "loop_mode", None)
        if loop_mode is not None:
            token["loop_mode"] = loop_mode
        unroll = getattr(analyzer, "unroll_bound", None)
        if unroll is not None:
            token["unroll_bound"] = unroll
        return token

    def config_hex(self) -> str:
        return _digest_json(self.config_token())

    def _top_digest(self) -> str:
        top = self.analyzer.top_value
        try:
            return _digest_json(self._value_content(top))
        except Unencodable:
            return "unencodable"

    # -- content digests (store keys; need not be resolvable) ------------

    def _clo_content(self, clo: Hashable) -> Any:
        if isinstance(clo, AbsClo):
            return ["clo", clo.param, self.hasher.hex(clo.body)]
        if isinstance(clo, AbsCpsClo):
            return [
                "cpsclo", clo.param, clo.kparam, self.hasher.hex(clo.body)
            ]
        if isinstance(clo, AbsCo):
            return ["co", clo.param, self.hasher.hex(clo.body)]
        if clo is A_STOP:
            return ["stop"]
        if clo is A_INC or clo is A_DEC or clo is A_INCK or clo is A_DECK:
            return ["tag", clo.tag]
        if isinstance(clo, AFrame):
            return ["af", clo.name, self.hasher.hex(clo.body)]
        if type(clo).__name__ == "PolyClo":
            return [
                "pclo",
                clo.param,
                self.hasher.hex(clo.body),
                [[n, list(c)] for n, c in clo.env],
            ]
        raise Unencodable(f"closure {clo!r}")

    def clo_hex(self, clo: Hashable) -> str:
        got = self._clo_digests.get(id(clo))
        if got is None:
            got = _digest_json(self._clo_content(clo))
            self._clo_digests[id(clo)] = got
        return got

    def _value_content(self, value: AbsVal) -> Any:
        return [
            elem_token(value.num),
            sorted(self.clo_hex(c) for c in value.clos),
            sorted(self.clo_hex(k) for k in value.konts),
        ]

    def _store_key_token(self, key: Any) -> Any:
        if isinstance(key, str):
            return key
        if type(key).__name__ == "CtxVar":
            return ["cv", key.name, list(key.ctx)]
        raise Unencodable(f"store key {key!r}")

    def store_hex(self, store: AbsStore) -> str:
        got = self._store_digests.get(store)
        if got is None:
            content = sorted(
                (
                    json.dumps(self._store_key_token(k)),
                    self._value_content(v),
                )
                for k, v in store.items()
            )
            got = _digest_json(content)
            self._store_digests[store] = got
        return got

    def kont_hex(self, kont: tuple) -> str:
        got = self._kont_digests.get(kont)
        if got is None:
            got = _digest_json(
                [[f.name, self.hasher.hex(f.body)] for f in kont]
            )
            self._kont_digests[kont] = got
        return got

    # -- judgment keys ---------------------------------------------------

    def split_key(self, memo_key: tuple) -> tuple[int, tuple, AbsStore, Any]:
        """``(node id, kont, entry store, extra)`` from a memo key."""
        if self.kind == "semantic-cps":
            nid, kont, store = memo_key
            return nid, kont, store, None
        if self.kind == "direct-kcfa":
            nid, envfs, ctx, store = memo_key
            return nid, (), store, (envfs, ctx)
        nid, store = memo_key
        return nid, (), store, None

    def judgment_key(self, memo_key: tuple) -> tuple[str, str] | None:
        """``(subject digest, judgment digest)`` for a memo key, or
        None when the subject node is unknown to the table."""
        nid, kont, store, extra = self.split_key(memo_key)
        subject_hex = self.table.digest_of_id(nid)
        if subject_hex is None:
            return None
        parts: list[Any] = [subject_hex, self.store_hex(store)]
        if kont:
            parts.append(self.kont_hex(kont))
        if extra is not None:
            envfs, ctx = extra
            parts.append(sorted([n, list(c)] for n, c in envfs))
            parts.append(list(ctx))
        return subject_hex, _digest_json(parts)

    # -- node references (resolvable) ------------------------------------

    def _node_ref(
        self,
        node: Any,
        subject_pos: tuple[int, Path],
        store: AbsStore,
        kont: tuple,
    ) -> Any:
        pos = self.table.by_id.get(id(node))
        if pos is None:
            raise Unencodable("node outside the table")
        root, path, _ = pos
        s_root, s_path = subject_pos
        if root == s_root and path[: len(s_path)] == s_path:
            return ["rel", list(path[len(s_path):])]
        for index, frame in enumerate(kont):
            fpos = self.table.by_id.get(id(frame.body))
            if (
                fpos is not None
                and fpos[0] == root
                and path[: len(fpos[1])] == fpos[1]
            ):
                return ["kref", index, list(path[len(fpos[1]):])]
        for key, value in store.items():
            for clo in _closures_of_value(value):
                body = getattr(clo, "body", None)
                if body is None:
                    continue
                bpos = self.table.by_id.get(id(body))
                if (
                    bpos is not None
                    and bpos[0] == root
                    and path[: len(bpos[1])] == bpos[1]
                ):
                    return [
                        "sref",
                        self._store_key_token(key),
                        self.clo_hex(clo),
                        list(path[len(bpos[1]):]),
                    ]
        raise Unencodable("node not reachable from judgment")

    def _resolve_ref(
        self,
        token: Any,
        subject: Any,
        store: AbsStore,
        kont: tuple,
    ) -> Any:
        kind = token[0]
        try:
            if kind == "rel":
                return resolve_path(subject, tuple(token[1]))
            if kind == "kref":
                return resolve_path(kont[token[1]].body, tuple(token[2]))
            if kind == "sref":
                key = self._decode_store_key(token[1])
                value = store.get(key)
                for clo in _closures_of_value(value):
                    if (
                        getattr(clo, "body", None) is not None
                        and self.clo_hex(clo) == token[2]
                    ):
                        return resolve_path(clo.body, tuple(token[3]))
        except (IndexError, TypeError):
            raise Unencodable(f"dangling ref {token!r}") from None
        raise Unencodable(f"unresolvable ref {token!r}")

    def _decode_store_key(self, token: Any) -> Any:
        if isinstance(token, str):
            return token
        if token[0] == "cv":
            from repro.analysis.polyvariant import CtxVar

            return CtxVar(token[1], tuple(token[2]))
        raise Unencodable(f"store key token {token!r}")

    # -- values and answers ----------------------------------------------

    def _encode_clo(self, clo: Hashable, ctx: tuple) -> Any:
        if isinstance(clo, AbsClo):
            return ["clo", clo.param, self._node_ref(clo.body, *ctx)]
        if isinstance(clo, AbsCpsClo):
            return [
                "cpsclo",
                clo.param,
                clo.kparam,
                self._node_ref(clo.body, *ctx),
            ]
        if isinstance(clo, AbsCo):
            return ["co", clo.param, self._node_ref(clo.body, *ctx)]
        if clo is A_STOP:
            return ["stop"]
        if clo is A_INC or clo is A_DEC or clo is A_INCK or clo is A_DECK:
            return ["tag", clo.tag]
        if isinstance(clo, AFrame):
            return ["af", clo.name, self._node_ref(clo.body, *ctx)]
        if type(clo).__name__ == "PolyClo":
            return [
                "pclo",
                clo.param,
                self._node_ref(clo.body, *ctx),
                [[n, list(c)] for n, c in clo.env],
            ]
        raise Unencodable(f"closure {clo!r}")

    def _decode_clo(self, token: Any, ctx: tuple) -> Hashable:
        kind = token[0]
        if kind == "clo":
            return AbsClo(token[1], self._resolve_ref(token[2], *ctx))
        if kind == "cpsclo":
            return AbsCpsClo(
                token[1], token[2], self._resolve_ref(token[3], *ctx)
            )
        if kind == "co":
            return AbsCo(token[1], self._resolve_ref(token[2], *ctx))
        if kind == "stop":
            return A_STOP
        if kind == "tag":
            return {
                "inc": A_INC, "dec": A_DEC, "inck": A_INCK, "deck": A_DECK
            }[token[1]]
        if kind == "af":
            return AFrame(token[1], self._resolve_ref(token[2], *ctx))
        if kind == "pclo":
            from repro.analysis.polyvariant import PolyClo

            return PolyClo(
                token[1],
                self._resolve_ref(token[2], *ctx),
                tuple((n, tuple(c)) for n, c in token[3]),
            )
        raise Unencodable(f"closure token {token!r}")

    def encode_value(self, value: AbsVal, ctx: tuple) -> Any:
        if value == self.analyzer.top_value:
            return ["top"]
        return [
            "v",
            elem_token(value.num),
            [self._encode_clo(c, ctx) for c in _sorted_clos(self, value.clos)],
            [self._encode_clo(k, ctx) for k in _sorted_clos(self, value.konts)],
        ]

    def decode_value(self, token: Any, ctx: tuple) -> AbsVal:
        if token[0] == "top":
            return self.analyzer.top_value
        value = AbsVal(
            elem_decode(token[1]),
            frozenset(self._decode_clo(t, ctx) for t in token[2]),
            frozenset(self._decode_clo(t, ctx) for t in token[3]),
        )
        interner = self.analyzer._interner
        return value if interner is None else interner.value(value)

    def encode_store(
        self, out: AbsStore, entry: AbsStore, ctx: tuple
    ) -> Any:
        """Encode ``out`` as a delta over the judgment's entry store
        (stores only grow along a derivation); falls back to a full
        encoding if that ever fails to hold."""
        delta = []
        full = False
        for key, value in entry.items():
            if out.get(key) != value:
                full = True
                break
        items = (
            out.items()
            if full
            else (
                (k, v) for k, v in out.items() if entry.get(k) != v
            )
        )
        for key, value in items:
            delta.append(
                [
                    json.dumps(self._store_key_token(key)),
                    self.encode_value(value, ctx),
                ]
            )
        delta.sort(key=lambda pair: pair[0])
        return ["full" if full else "delta", delta]

    def decode_store(
        self, token: Any, entry: AbsStore, ctx: tuple
    ) -> AbsStore:
        table: dict[Any, AbsVal] = (
            {} if token[0] == "full" else dict(entry.items())
        )
        for key_json, value_token in token[1]:
            key = self._decode_store_key(json.loads(key_json))
            table[key] = self.decode_value(value_token, ctx)
        store = AbsStore(self.lattice, table)
        return self.analyzer.intern_store(store)

    def encode_answer(self, answer: Any, memo_key: tuple) -> Any:
        nid, kont, entry_store, _ = self.split_key(memo_key)
        info = self.table.by_id.get(nid)
        if info is None:
            raise Unencodable("judgment subject unknown")
        ctx = ((info[0], info[1]), entry_store, kont)
        if isinstance(answer, AAnswer):
            return [
                "aa",
                self.encode_value(answer.value, ctx),
                self.encode_store(answer.store, entry_store, ctx),
            ]
        if (
            isinstance(answer, tuple)
            and len(answer) == 2
            and isinstance(answer[0], AbsVal)
        ):
            return [
                "vs",
                self.encode_value(answer[0], ctx),
                self.encode_store(answer[1], entry_store, ctx),
            ]
        raise Unencodable(f"answer {answer!r}")

    def decode_answer(self, token: Any, memo_key: tuple) -> Any:
        nid, kont, entry_store, _ = self.split_key(memo_key)
        subject = self.table.node_of_id(nid)
        if subject is None:
            raise Unencodable("judgment subject unknown")
        ctx = (subject, entry_store, kont)
        value = self.decode_value(token[1], ctx)
        store = self.decode_store(token[2], entry_store, ctx)
        if token[0] == "aa":
            return AAnswer(value, store)
        return (value, store)

    # -- whole entries ---------------------------------------------------

    def encode_entry(
        self, memo_key: tuple, answer: Any, marks: frozenset[str]
    ) -> str:
        """Serialize one memo entry (answer + footprint digests)."""
        return json.dumps(
            {
                "a": self.encode_answer(answer, memo_key),
                "fp": sorted(marks),
            },
            separators=(",", ":"),
        )

    def decode_entry(
        self, payload: str, memo_key: tuple
    ) -> tuple[Any, frozenset[str]]:
        data = json.loads(payload)
        answer = self.decode_answer(data["a"], memo_key)
        return answer, frozenset(data["fp"])

    def footprint_marks(
        self, fp_keys: frozenset, fp_marks: frozenset[str]
    ) -> frozenset[str] | None:
        """The digest form of a footprint, or None when a key's node
        is unknown (the entry cannot be persisted safely)."""
        marks = set(fp_marks)
        for key in fp_keys:
            digest = self.table.digest_of_id(key[0])
            if digest is None:
                return None
            marks.add(digest)
        return frozenset(marks)


def _sorted_clos(codec: JudgmentCodec, clos: frozenset) -> list:
    return sorted(clos, key=codec.clo_hex)


def _digest_json(token: Any) -> str:
    payload = json.dumps(token, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:40]


# ----------------------------------------------------------------------
# Whole-run (root) summaries
# ----------------------------------------------------------------------

_STATS_FIELDS = (
    "visits",
    "loop_cuts",
    "max_depth",
    "returns_analyzed",
    "joins",
    "widenings",
    "max_store_size",
)


def encode_stats(stats: AnalysisStats) -> dict:
    return {name: getattr(stats, name) for name in _STATS_FIELDS}


def decode_stats(data: Mapping[str, int]) -> AnalysisStats:
    return AnalysisStats(**{name: data[name] for name in _STATS_FIELDS})
