"""Sub-term incremental re-analysis over the persistent store.

`analyze_incremental(old_term, new_term, ...)` is the top of the
subsystem: it Merkle-diffs the two programs, runs the analyzer on the
new one with a `SummaryRecorder` attached to the (shared) store, and
reports which sub-trees were dirty and how much of the old derivation
was stitched back in.  The result is **bit-identical** to a
from-scratch analysis of the new term — reuse changes only the work
counters, never the answer — which the differential suite enforces
across the corpus, the five analyzers, the domains, and both engines
(the pushdown analyzer participates tree-only and without
persistence; see `run_analysis`).

`run_analysis` is the shared single-run entry: the serve layer, the
bench harness, and ``repro cachectl warm`` all use it to run one
analyzer with persistence attached.  Persistence requires the tree
engine with the eval memo enabled (``cache=True``) — the plan engine
and uncached runs execute normally and simply skip the store.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.analysis.registry import ANALYZERS, canonical_analyzer
from repro.incr.hash import Path as TreePath
from repro.incr.hash import TermHasher, merkle_diff, term_hash
from repro.incr.recorder import SummaryRecorder
from repro.incr.store import IncrStore

#: Analyzer names accepted by `run_analysis` / `analyze_incremental`
#: — the canonical registry vocabulary (aliases fold).  The pushdown
#: analyzer runs but does not persist: its memo is the per-call
#: summary table (keyed by closure × argument × entry store), not the
#: per-sub-term judgment memo the `SummaryRecorder` snapshots.

#: Environment override for the default store location.
STORE_ENV = "REPRO_INCR_STORE"


def default_store_path() -> str:
    """The store path used when none is given: ``$REPRO_INCR_STORE``
    or ``~/.cache/repro/incr.sqlite``."""
    override = os.environ.get(STORE_ENV)
    if override:
        return override
    return os.path.join(
        os.path.expanduser("~"), ".cache", "repro", "incr.sqlite"
    )


def _coerce_store(store: "IncrStore | str | None") -> tuple[IncrStore, bool]:
    """An open store and whether this call owns (must close) it."""
    if isinstance(store, IncrStore):
        return store, False
    if store is None:
        return IncrStore(":memory:"), True
    parent = os.path.dirname(os.path.abspath(store))
    os.makedirs(parent, exist_ok=True)
    return IncrStore(store), True


def run_analysis(
    analyzer: str,
    term: Any,
    *,
    domain: Any = None,
    initial: "Mapping[str, Any] | None" = None,
    store: IncrStore | None = None,
    hasher: TermHasher | None = None,
    readonly: bool = False,
    k: int = 1,
    loop_mode: str = "reject",
    unroll_bound: int = 32,
    check: bool = True,
    max_visits: "int | None" = None,
    trace: Any = None,
    metrics: Any = None,
    cache: "bool | None" = True,
    engine: str = "tree",
    plan_tier: str = "opt",
):
    """Run one analyzer over ``term``, persisting summaries through
    ``store`` when possible.  Returns ``(result, recorder_or_None)``.

    ``term`` is the direct-style (ANF) program for every analyzer; the
    syntactic-CPS analyzer converts it (and the initial store) itself,
    exactly as the serve layer does, so persisted judgments key on the
    CPS tree the analyzer actually walks.
    """
    analyzer = canonical_analyzer(analyzer, ANALYZERS)
    from repro.obs.sinks import NULL_SINK

    common = dict(
        domain=domain,
        initial=dict(initial or {}),
        check=check,
        max_visits=max_visits,
        trace=trace if trace is not None else NULL_SINK,
        metrics=metrics,
        cache=cache,
    )
    persist = store is not None and engine == "tree" and cache is True
    if engine != "tree":
        # The plan engine has its own compiled-plan cache; persistence
        # applies to the tree engine's judgment memo only.
        from repro.analysis import (
            analyze_direct,
            analyze_polyvariant,
            analyze_pushdown,
            analyze_semantic_cps,
            analyze_syntactic_cps,
        )

        if analyzer == "pushdown":
            # Tree-only: raises `EngineUnsupported` with the requested
            # engine named, exactly like the direct API.
            return analyze_pushdown(term, engine=engine, **common), None
        if analyzer == "direct":
            return (
                analyze_direct(
                    term, engine=engine, plan_tier=plan_tier, **common
                ),
                None,
            )
        if analyzer == "semantic-cps":
            return (
                analyze_semantic_cps(
                    term,
                    loop_mode=loop_mode,
                    unroll_bound=unroll_bound,
                    engine=engine,
                    plan_tier=plan_tier,
                    **common,
                ),
                None,
            )
        if analyzer == "syntactic-cps":
            subject, cps_initial = _cps_subject(term, domain, common["initial"])
            common["initial"] = cps_initial
            return (
                analyze_syntactic_cps(
                    subject,
                    loop_mode=loop_mode,
                    unroll_bound=unroll_bound,
                    engine=engine,
                    plan_tier=plan_tier,
                    **common,
                ),
                None,
            )
        return (
            analyze_polyvariant(
                term, k=k, engine=engine, plan_tier=plan_tier, **common
            ),
            None,
        )

    if analyzer == "direct":
        from repro.analysis.direct import DirectAnalyzer

        instance = DirectAnalyzer(term, **common)
        subject = term
    elif analyzer == "semantic-cps":
        from repro.analysis.semantic_cps import SemanticCpsAnalyzer

        instance = SemanticCpsAnalyzer(
            term, loop_mode=loop_mode, unroll_bound=unroll_bound, **common
        )
        subject = term
    elif analyzer == "syntactic-cps":
        from repro.analysis.syntactic_cps import SyntacticCpsAnalyzer

        subject, cps_initial = _cps_subject(term, domain, common["initial"])
        common["initial"] = cps_initial
        instance = SyntacticCpsAnalyzer(
            subject, loop_mode=loop_mode, unroll_bound=unroll_bound, **common
        )
    elif analyzer == "pushdown":
        from repro.analysis.pushdown import PushdownAnalyzer

        instance = PushdownAnalyzer(term, **common)
        subject = term
        persist = False  # summaries are call-keyed, not sub-term-keyed
    else:
        from repro.analysis.polyvariant import PolyvariantDirectAnalyzer

        instance = PolyvariantDirectAnalyzer(term, k=k, **common)
        subject = term

    recorder = None
    if persist:
        recorder = SummaryRecorder(
            instance,
            store,
            program=subject,
            initial_store=instance.initial_store,
            hasher=hasher,
            readonly=readonly,
        )
        instance.attach_recorder(recorder)
    result = instance.run()
    if recorder is not None:
        recorder.flush()
    return result, recorder


def _cps_subject(term: Any, domain: Any, initial: dict):
    """The CPS subject tree and initial store the syntactic analyzer
    actually consumes (mirrors the serve layer's conversion)."""
    from repro.analysis.delta import delta_store
    from repro.cps import cps_transform
    from repro.domains import ConstPropDomain, Lattice
    from repro.domains.store import AbsStore

    lattice = Lattice(domain if domain is not None else ConstPropDomain())
    cps_initial = dict(delta_store(AbsStore(lattice, initial)).items())
    return cps_transform(term), cps_initial


@dataclass
class IncrReport:
    """What `analyze_incremental` hands back."""

    #: The analysis result for the *new* term (bit-identical to a
    #: from-scratch run).
    result: Any
    #: Alpha-invariant hash of the new term (the serve-layer ETag).
    term_hash: str
    #: Minimal dirty sub-tree paths (in the new term) vs the old one.
    dirty_paths: list[TreePath] = field(default_factory=list)
    #: Store-level counters for the incremental run only.
    store_stats: dict = field(default_factory=dict)
    #: Summaries written while seeding from the old term (0 when the
    #: store was already warm or seeding was skipped).
    seeded: int = 0

    @property
    def reused(self) -> int:
        """Persisted summaries stitched into the new derivation."""
        return int(self.store_stats.get("hits", 0))


def analyze_incremental(
    old_term: Any,
    new_term: Any,
    *,
    analyzer: str = "direct",
    store: "IncrStore | str | None" = None,
    seed: bool = True,
    **options: Any,
) -> IncrReport:
    """Analyze ``new_term`` reusing the derivation of ``old_term``.

    ``seed=True`` (the default) first analyzes ``old_term`` into the
    store — the edit-time flow where both versions are at hand.  With
    ``seed=False`` the store is assumed warm (e.g. populated by an
    earlier run or another process).  ``store`` may be an open
    `IncrStore`, a filesystem path, or None for an in-memory session.

    The answer is exactly what a from-scratch analysis of ``new_term``
    would produce; only the visit counters (and wall clock) differ.
    """
    opened, owns = _coerce_store(store)
    hasher = TermHasher()
    try:
        seeded = 0
        if seed:
            _, seed_rec = run_analysis(
                analyzer, old_term, store=opened, hasher=hasher, **options
            )
            seeded = opened.stats.puts
        dirty = merkle_diff(old_term, new_term, hasher)
        before = opened.stats.as_dict()
        result, _ = run_analysis(
            analyzer, new_term, store=opened, hasher=hasher, **options
        )
        after = opened.stats.as_dict()
        delta = {name: after[name] - before[name] for name in after}
        return IncrReport(
            result=result,
            term_hash=term_hash(new_term),
            dirty_paths=dirty,
            store_stats=delta,
            seeded=seeded,
        )
    finally:
        if owns:
            opened.close()
