"""The summary recorder: the bridge between an analyzer's in-memory
eval memo and the persistent store.

`WorkBudgetMixin` exposes two hook points when a recorder is attached
(see ``attach_recorder`` there):

- on a memo **miss**, the recorder is consulted: it looks the
  judgment up in its preloaded working set, decodes the summary
  against the probe-time objects, checks the footprint digests
  against the active path, and — on success — returns an entry that
  is indistinguishable from one the in-memory memo would have stored;
- on a memo **store** (a frame that passed PR 2's taint check), the
  recorder encodes the entry and buffers it for a single batched
  write at the end of the run.

The recorder preloads every persisted row whose subject digest occurs
in the current program (one indexed query per run), so probe misses
against the persistent layer are plain dict misses — no per-judgment
sqlite round-trips on the hot path.
"""

from __future__ import annotations

from typing import Any

from repro.incr.codec import JudgmentCodec, NodeTable, Unencodable
from repro.incr.hash import TermHasher
from repro.incr.store import KIND_SUB, IncrStore


class SummaryRecorder:
    """Per-run persistence session for one analyzer instance."""

    def __init__(
        self,
        analyzer: Any,
        store: IncrStore,
        *,
        program: Any,
        initial_store: Any,
        hasher: TermHasher | None = None,
        readonly: bool = False,
    ) -> None:
        table = NodeTable(hasher)
        table.add_root(program)
        table.add_store_roots(initial_store)
        self.table = table
        self.codec = JudgmentCodec(analyzer, table)
        self.store = store
        self.cfg = self.codec.config_hex()
        self.readonly = readonly
        self._pending: dict[tuple[str, str], str] = {}
        self._served: set[tuple[str, str]] = set()
        self._decoded_bad: set[tuple[str, str]] = set()
        subjects = sorted(
            {table.hasher.hex(info[2]) for info in table.by_id.values()}
        )
        self._working_set = store.load(self.cfg, KIND_SUB, subjects)

    # -- mixin hooks -----------------------------------------------------

    def lookup(self, memo_key: tuple, active: dict) -> tuple | None:
        """A decoded memo entry ``(answer, fp_keys, fp_marks)`` for a
        judgment the in-memory memo missed, or None."""
        jk = self.codec.judgment_key(memo_key)
        if jk is None:
            return None
        if jk in self._decoded_bad:
            return None
        payload = self._pending.get(jk)
        if payload is None:
            payload = self._working_set.get(jk)
        if payload is None:
            self.store.stats.misses += 1
            return None
        try:
            answer, marks = self.codec.decode_entry(payload, memo_key)
        except (Unencodable, KeyError, ValueError):
            self._decoded_bad.add(jk)
            self.store.stats.errors += 1
            return None
        # Footprint-vs-active check: if any judgment the recorded
        # derivation consulted is on the active path *now*, a fresh
        # evaluation here would cut where the recorded one did not —
        # reject (PR 2's read-side guard, at digest granularity).
        if marks and self.clashes(marks, active):
            self.store.stats.stale_rejections += 1
            return None
        self.store.stats.hits += 1
        self._served.add(jk)
        return answer, frozenset(), marks

    def clashes(self, marks: frozenset, active: dict) -> bool:
        digest_of = self.table.digest_of_id
        for key in active:
            digest = digest_of(key[0])
            if digest is None or digest in marks:
                return True
        return False

    def record(
        self, memo_key: tuple, answer: Any, fp_keys: frozenset, fp_marks: frozenset
    ) -> None:
        """Buffer a just-stored memo entry for persistence."""
        if self.readonly:
            return
        jk = self.codec.judgment_key(memo_key)
        if jk is None or jk in self._working_set or jk in self._pending:
            return
        marks = self.codec.footprint_marks(fp_keys, fp_marks)
        if marks is None:
            return
        try:
            payload = self.codec.encode_entry(memo_key, answer, marks)
        except (Unencodable, KeyError, ValueError):
            return
        self._pending[jk] = payload

    def mark_digest(self, node_id: int) -> str | None:
        """Hex digest of an active-path subject (footprint folding)."""
        return self.table.digest_of_id(node_id)

    # -- session end -----------------------------------------------------

    def flush(self) -> int:
        """Write buffered summaries and usage refreshes; returns the
        number of new rows written."""
        rows = [
            (self.cfg, KIND_SUB, subject, judgment, payload)
            for (subject, judgment), payload in self._pending.items()
        ]
        self.store.put_many(rows)
        written = len(rows)
        self._pending.clear()
        if self._served:
            self.store.touch_used(
                [
                    (self.cfg, KIND_SUB, subject, judgment)
                    for subject, judgment in self._served
                ]
            )
            self._served.clear()
        return written
