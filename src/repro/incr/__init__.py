"""repro.incr — content-addressed persistence and incremental
re-analysis.

The subsystem in one sentence: analyzer judgments are keyed by the
Merkle digest of the sub-term they are about (plus the abstract store,
continuation, and analyzer configuration they were computed under), so
summaries survive process exit in a sqlite file and a later run — same
program, an edited program, or another process entirely — stitches
them back into its derivation instead of recomputing.

Layers, bottom up:

- `repro.incr.hash` — canonical Merkle structure digests over the ANF
  and CPS syntax trees, the alpha-invariant `term_hash` ETag, and
  `merkle_diff`;
- `repro.incr.store` — the sqlite-backed `IncrStore` (WAL,
  multi-process safe, schema-versioned, size-bounded gc);
- `repro.incr.codec` — position-independent encoding of judgment
  keys, abstract values/stores, and answers;
- `repro.incr.recorder` — the `SummaryRecorder` bridging an
  analyzer's in-memory eval memo to the store, carrying the footprint
  soundness guard across processes;
- `repro.incr.driver` — `analyze_incremental` / `run_analysis`, the
  entries the CLI, bench, and serve layers use.

See ``docs/PERSISTENCE.md`` for the design and soundness argument.
"""

from repro.incr.driver import (
    ANALYZERS,
    IncrReport,
    analyze_incremental,
    default_store_path,
    run_analysis,
)
from repro.incr.hash import (
    TermHasher,
    merkle_diff,
    replace_at,
    resolve_path,
    structure_hex,
    term_hash,
)
from repro.incr.recorder import SummaryRecorder
from repro.incr.store import IncrStore, open_store

__all__ = [
    "ANALYZERS",
    "IncrReport",
    "IncrStore",
    "SummaryRecorder",
    "TermHasher",
    "analyze_incremental",
    "default_store_path",
    "merkle_diff",
    "open_store",
    "replace_at",
    "resolve_path",
    "run_analysis",
    "structure_hex",
    "term_hash",
]
