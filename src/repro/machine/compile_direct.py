"""Code generation from A-normal form (the direct back end).

Procedure calls compile to `Call`, which makes the machine push a
return frame; conditionals compile to `Branch` blocks that resume
through a join frame.  The machine therefore maintains the program's
control stack explicitly — one stack, in the machine, exactly as the
direct semantics of Figure 1 has it.

The back end performs *last-call optimization*: a binding whose body
is exactly its own variable — ``(let (x (f a)) x)`` or
``(let (x (if0 ...)) x)``, the shapes A-normalization produces for
tail calls and tail conditionals — compiles to `TailCall` /
`BranchJump`, which do not push a frame.  Tail-recursive loops
therefore run in constant stack space, matching what the CPS back end
gets for free (every CPS call is a tail call by construction).
"""

from __future__ import annotations

from repro.anf.validate import validate_anf
from repro.lang.ast import (
    App,
    If0,
    Lam,
    Let,
    Loop,
    Num,
    Prim,
    PrimApp,
    Term,
    Var,
    is_value,
)
from repro.machine.code import (
    Bind,
    Branch,
    BranchJump,
    Call,
    Close,
    Code,
    Const,
    DivergeLoop,
    Halt,
    Instr,
    Lookup,
    MakePrim,
    Op,
    Push,
    TailCall,
)


def compile_direct(term: Term, check: bool = True) -> Code:
    """Compile a restricted-subset program to machine code.

    The produced code ends in `Halt`; run it with
    :func:`repro.machine.vm.run_code`.
    """
    if check:
        validate_anf(term)
    return tuple(_compile(term)) + (Halt(),)


def _compile_value(value: Term) -> list[Instr]:
    match value:
        case Num(n):
            return [Const(n)]
        case Var(name):
            return [Lookup(name)]
        case Prim(name):
            return [MakePrim(name)]
        case Lam(param, body):
            return [Close(param, tuple(_compile(body)))]
    raise TypeError(f"not a syntactic value: {value!r}")


def _is_tail_binding(term: Let) -> bool:
    """``(let (x rhs) x)``: the binding's value is the block's value."""
    return isinstance(term.body, Var) and term.body.name == term.name


def _compile(term: Term) -> list[Instr]:
    code: list[Instr] = []
    while isinstance(term, Let):
        rhs = term.rhs
        if _is_tail_binding(term) and isinstance(rhs, App):
            code += _compile_value(rhs.fun)
            code.append(Push())
            code += _compile_value(rhs.arg)
            code.append(TailCall())
            return code
        if _is_tail_binding(term) and isinstance(rhs, If0):
            code += _compile_value(rhs.test)
            code.append(
                BranchJump(
                    tuple(_compile(rhs.then)), tuple(_compile(rhs.orelse))
                )
            )
            return code
        if is_value(rhs):
            code += _compile_value(rhs)
        elif isinstance(rhs, App):
            code += _compile_value(rhs.fun)
            code.append(Push())
            code += _compile_value(rhs.arg)
            code.append(Call())
        elif isinstance(rhs, PrimApp):
            first, second = rhs.args
            code += _compile_value(first)
            code.append(Push())
            code += _compile_value(second)
            code.append(Op(rhs.op))
        elif isinstance(rhs, If0):
            code += _compile_value(rhs.test)
            code.append(
                Branch(tuple(_compile(rhs.then)), tuple(_compile(rhs.orelse)))
            )
        elif isinstance(rhs, Loop):
            code.append(DivergeLoop())
        else:
            raise TypeError(f"invalid let right-hand side: {rhs!r}")
        code.append(Bind(term.name))
        term = term.body
    code += _compile_value(term)
    return code
