"""Code generation from cps(A) (the CPS back end).

Every serious term compiles to code that *jumps*: calls pass an
explicit continuation closure (`CallK`), returns invoke a continuation
from the environment (`RetK`), and conditionals replace the current
code (`BranchJump`).  No instruction ever pushes a return frame, so
the machine's control stack stays empty — the program's control
context lives in the continuation closures instead.  This is the
operational content of the paper's Section 6.3 remark that CPS merely
*obscures* the single control stack: it is still there, spelled as a
chain of heap closures.
"""

from __future__ import annotations

from repro.cps.ast import (
    CApp,
    CIf0,
    CLam,
    CLet,
    CLoop,
    CNum,
    CPrim,
    CPrimLet,
    CTerm,
    CValue,
    CVar,
    KApp,
    KLam,
)
from repro.cps.transform import TOP_KVAR
from repro.cps.validate import validate_cps
from repro.machine.code import (
    Bind,
    BranchJump,
    CallK,
    CloseF,
    CloseK,
    Code,
    Const,
    DivergeLoop,
    Instr,
    Lookup,
    MakePrim,
    Op,
    Push,
    RetK,
)


def compile_cps(
    term: CTerm, top_kvar: str = TOP_KVAR, check: bool = True
) -> Code:
    """Compile a cps(A) program to machine code.

    The machine binds ``top_kvar`` to the halt continuation before
    running.  The produced code contains no `Halt`: execution ends
    when the halt continuation is invoked.
    """
    if check:
        validate_cps(term, frozenset((top_kvar,)))
    return tuple(_compile(term))


def _compile_value(value: CValue) -> list[Instr]:
    match value:
        case CNum(n):
            return [Const(n)]
        case CVar(name):
            return [Lookup(name)]
        case CPrim(name):
            return [MakePrim("add1" if name == "add1k" else "sub1")]
        case CLam(param, kparam, body):
            return [CloseF(param, kparam, tuple(_compile(body)))]
    raise TypeError(f"not a cps(A) value: {value!r}")


def _compile_klam(kont: KLam) -> Instr:
    return CloseK(kont.param, tuple(_compile(kont.body)))


def _compile(term: CTerm) -> list[Instr]:
    code: list[Instr] = []
    while True:
        match term:
            case KApp(kvar, value):
                code += _compile_value(value)
                code.append(RetK(kvar))
                return code
            case CLet(name, value, body):
                code += _compile_value(value)
                code.append(Bind(name))
                term = body
            case CApp(fun, arg, kont):
                code += _compile_value(fun)
                code.append(Push())
                code += _compile_value(arg)
                code.append(Push())
                code.append(_compile_klam(kont))
                code.append(CallK())
                return code
            case CIf0(kvar, kont, test, then, orelse):
                code.append(_compile_klam(kont))
                code.append(Bind(kvar))
                code += _compile_value(test)
                code.append(
                    BranchJump(
                        tuple(_compile(then)), tuple(_compile(orelse))
                    )
                )
                return code
            case CPrimLet(name, op, args, body):
                first, second = args
                code += _compile_value(first)
                code.append(Push())
                code += _compile_value(second)
                code.append(Op(op))
                code.append(Bind(name))
                term = body
            case CLoop(_):
                code.append(DivergeLoop())
                return code
            case _:
                raise TypeError(f"not a cps(A) term: {term!r}")
