"""The abstract machine executing compiled code.

One machine runs both back ends' output.  Its state is::

    (code, pc, env, acc, operand stack, frame stack)

The frame stack is only ever touched by `Call`/`Branch` — instructions
the *direct* back end emits.  CPS-compiled code consists entirely of
jumps, so its frame stack stays empty for the whole run;
`MachineStats.max_frames` records the observed depth so tests can
assert the contrast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.interp.errors import Diverged, FuelExhausted, StuckError
from repro.machine.code import (
    Bind,
    Branch,
    BranchJump,
    Call,
    CallK,
    Close,
    CloseF,
    CloseK,
    Code,
    Const,
    DivergeLoop,
    Halt,
    Lookup,
    MakePrim,
    Op,
    Push,
    RetK,
    TailCall,
)

#: Default step budget.
DEFAULT_FUEL = 1_000_000

_OPERATIONS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
}


@dataclass(frozen=True, slots=True)
class MPrim:
    """A primitive procedure value."""

    tag: str  # 'add1' | 'sub1'


@dataclass(frozen=True, slots=True)
class MClosure:
    """A direct-style closure."""

    param: str
    code: Code
    env: Mapping[str, Any]


@dataclass(frozen=True, slots=True)
class MClosureK:
    """A CPS closure: takes a value and a continuation."""

    param: str
    kparam: str
    code: Code
    env: Mapping[str, Any]


@dataclass(frozen=True, slots=True)
class MKont:
    """A reified continuation closure."""

    param: str
    code: Code
    env: Mapping[str, Any]


@dataclass(frozen=True, slots=True)
class MHalt:
    """The halt continuation."""


@dataclass(frozen=True, slots=True)
class _Frame:
    code: Code
    pc: int
    env: Mapping[str, Any]


@dataclass(slots=True)
class MachineStats:
    """Execution counters.

    ``max_frames`` is the key observable: > 0 for direct-compiled
    code with non-tail calls, always 0 for CPS-compiled code.
    """

    steps: int = 0
    max_frames: int = 0
    max_operands: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view."""
        return {
            "steps": self.steps,
            "max_frames": self.max_frames,
            "max_operands": self.max_operands,
        }


def _expect_int(value: Any, context: str) -> int:
    if isinstance(value, int) and not isinstance(value, bool):
        return value
    raise StuckError(f"{context}: expected a number, got {value!r}")


def run_code(
    code: Code,
    initial_env: Mapping[str, Any] | None = None,
    halt_kvar: str | None = None,
    fuel: int = DEFAULT_FUEL,
) -> tuple[Any, MachineStats]:
    """Execute a compiled program.

    Args:
        code: output of :func:`compile_direct` or :func:`compile_cps`.
        initial_env: bindings for free variables (machine values).
        halt_kvar: for CPS code — the continuation variable to bind to
            the halt continuation (pass the transform's ``TOP_KVAR``).
        fuel: step budget.

    Returns:
        The final accumulator value and the run's `MachineStats`.
    """
    env: dict[str, Any] = dict(initial_env) if initial_env else {}
    if halt_kvar is not None:
        env[halt_kvar] = MHalt()
    pc = 0
    acc: Any = None
    operands: list[Any] = []
    frames: list[_Frame] = []
    stats = MachineStats()

    def enter(target: Code, new_env: dict[str, Any]) -> tuple[Code, int, dict]:
        return target, 0, new_env

    while True:
        stats.steps += 1
        if stats.steps > fuel:
            raise FuelExhausted(fuel)
        if pc >= len(code):
            # a block fell off its end: resume the pending frame, or —
            # with no frames left (e.g. after a top-level tail call) —
            # the block's value is the program's answer
            if not frames:
                return acc, stats
            frame = frames.pop()
            code, pc, env = frame.code, frame.pc, dict(frame.env)
            continue
        instr = code[pc]
        pc += 1
        match instr:
            case Const(n):
                acc = n
            case Lookup(name):
                try:
                    acc = env[name]
                except KeyError:
                    raise StuckError(f"unbound variable {name!r}") from None
            case MakePrim(tag):
                acc = MPrim(tag)
            case Close(param, body):
                acc = MClosure(param, body, dict(env))
            case CloseF(param, kparam, body):
                acc = MClosureK(param, kparam, body, dict(env))
            case CloseK(param, body):
                acc = MKont(param, body, dict(env))
            case Bind(name):
                env = dict(env)
                env[name] = acc
            case Push():
                operands.append(acc)
                stats.max_operands = max(stats.max_operands, len(operands))
            case Call() | TailCall():
                fun = operands.pop()
                arg = acc
                if isinstance(fun, MPrim):
                    delta = 1 if fun.tag == "add1" else -1
                    acc = _expect_int(arg, fun.tag) + delta
                elif isinstance(fun, MClosure):
                    if isinstance(instr, Call):
                        frames.append(_Frame(code, pc, env))
                        stats.max_frames = max(
                            stats.max_frames, len(frames)
                        )
                    # TailCall reuses the caller's pending frame
                    new_env = dict(fun.env)
                    new_env[fun.param] = arg
                    code, pc, env = enter(fun.code, new_env)
                else:
                    raise StuckError(f"cannot apply {fun!r}")
            case CallK():
                kont = acc
                arg = operands.pop()
                fun = operands.pop()
                if isinstance(fun, MPrim):
                    delta = 1 if fun.tag == "add1" else -1
                    result = _expect_int(arg, fun.tag) + delta
                    done, state = _invoke_kont(kont, result)
                    if done:
                        return state, stats
                    code, pc, env = state
                elif isinstance(fun, MClosureK):
                    new_env = dict(fun.env)
                    new_env[fun.param] = arg
                    new_env[fun.kparam] = kont
                    code, pc, env = enter(fun.code, new_env)
                else:
                    raise StuckError(f"cannot apply {fun!r}")
            case RetK(kvar):
                try:
                    kont = env[kvar]
                except KeyError:
                    raise StuckError(
                        f"unbound continuation {kvar!r}"
                    ) from None
                done, state = _invoke_kont(kont, acc)
                if done:
                    return state, stats
                code, pc, env = state
            case Branch(then_code, else_code):
                frames.append(_Frame(code, pc, env))
                stats.max_frames = max(stats.max_frames, len(frames))
                taken = then_code if acc == 0 and isinstance(acc, int) else else_code
                code, pc = taken, 0
            case BranchJump(then_code, else_code):
                taken = then_code if acc == 0 and isinstance(acc, int) else else_code
                code, pc = taken, 0
            case Op(op):
                rhs = _expect_int(acc, op)
                lhs = _expect_int(operands.pop(), op)
                acc = _OPERATIONS[op](lhs, rhs)
            case DivergeLoop():
                raise Diverged()
            case Halt():
                return acc, stats
            case _:
                raise StuckError(f"unknown instruction {instr!r}")


def _invoke_kont(kont: Any, value: Any):
    """Invoke a continuation value; returns (done, answer-or-state)."""
    if isinstance(kont, MHalt):
        return True, value
    if isinstance(kont, MKont):
        new_env = dict(kont.env)
        new_env[kont.param] = value
        return False, (kont.code, 0, new_env)
    raise StuckError(f"cannot return through {kont!r}")
