"""Bytecode for the abstract machine.

A code object is a tuple of instructions.  The machine keeps an
accumulator, a lexical environment, an operand stack, and — only for
code produced by the *direct* back end — a control stack of return
frames.  Instruction summary::

    Const(n)            acc := n
    Lookup(x)           acc := env[x]
    MakePrim(tag)       acc := the primitive procedure `tag`
    Close(x, code)      acc := closure(x, code, env)
    CloseK(x, code)     acc := continuation-closure(x, code, env)
    Bind(x)             env := env[x := acc]
    Push                push acc on the operand stack
    Call                arg := acc, fun := pop; invoke fun, pushing a
                        return frame (direct back end)
    CallK               kont := acc, arg := pop, fun := pop; invoke fun
                        passing kont (CPS back end; no frame)
    RetK(k)             invoke the continuation env[k] with acc
    Branch(then, else)  enter a sub-code block, pushing a join frame
    BranchJump(t, e)    replace the current code by a branch (no frame)
    Op(op)              rhs := acc, lhs := pop; acc := lhs op rhs
    DivergeLoop         the `loop` construct: diverge
    Halt                stop with acc as the answer

Code blocks produced by `Branch` resume through the frame mechanism;
`BranchJump` blocks never return, which is what keeps the CPS back
end's control stack empty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, slots=True)
class Const:
    value: int


@dataclass(frozen=True, slots=True)
class Lookup:
    name: str


@dataclass(frozen=True, slots=True)
class MakePrim:
    tag: str  # 'add1' | 'sub1'


@dataclass(frozen=True, slots=True)
class Close:
    param: str
    code: "Code"


@dataclass(frozen=True, slots=True)
class CloseF:
    """A CPS user closure: takes a value and a continuation."""

    param: str
    kparam: str
    code: "Code"


@dataclass(frozen=True, slots=True)
class CloseK:
    param: str
    code: "Code"


@dataclass(frozen=True, slots=True)
class Bind:
    name: str


@dataclass(frozen=True, slots=True)
class Push:
    pass


@dataclass(frozen=True, slots=True)
class Call:
    pass


@dataclass(frozen=True, slots=True)
class TailCall:
    """A call in tail position: invoke without pushing a return frame
    (the callee's result falls through to the caller's pending frame)."""

    pass


@dataclass(frozen=True, slots=True)
class CallK:
    pass


@dataclass(frozen=True, slots=True)
class RetK:
    kvar: str


@dataclass(frozen=True, slots=True)
class Branch:
    then_code: "Code"
    else_code: "Code"


@dataclass(frozen=True, slots=True)
class BranchJump:
    then_code: "Code"
    else_code: "Code"


@dataclass(frozen=True, slots=True)
class Op:
    op: str


@dataclass(frozen=True, slots=True)
class DivergeLoop:
    pass


@dataclass(frozen=True, slots=True)
class Halt:
    pass


Instr = Union[
    Const,
    Lookup,
    MakePrim,
    Close,
    CloseF,
    CloseK,
    Bind,
    Push,
    Call,
    TailCall,
    CallK,
    RetK,
    Branch,
    BranchJump,
    Op,
    DivergeLoop,
    Halt,
]

#: A compiled code block.
Code = tuple[Instr, ...]


def code_size(code: Code) -> int:
    """Total instruction count, including nested blocks."""
    total = 0
    for instr in code:
        total += 1
        match instr:
            case Close(_, inner) | CloseK(_, inner):
                total += code_size(inner)
            case CloseF(_, _, inner):
                total += code_size(inner)
            case Branch(then_code, else_code) | BranchJump(
                then_code, else_code
            ):
                total += code_size(then_code) + code_size(else_code)
            case _:
                pass
    return total
