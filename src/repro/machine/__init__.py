"""A small compiler back end: bytecode and an abstract machine.

The paper's opening concern is *compiling* with continuations: CPS is
an intermediate representation for compilers, and the companion work
it builds on ("The Essence of Compiling with Continuations") shows
that the code-generation phase needs only A-normal form.  This package
makes that concrete with two code generators targeting one tiny
machine:

- :mod:`repro.machine.compile_direct` compiles the A-normal form.
  Calls push *return frames*: the machine maintains a control stack.
- :mod:`repro.machine.compile_cps` compiles cps(A).  Every transition
  is a jump; continuations are ordinary heap-allocated closures and
  the machine's frame stack provably stays empty (a test asserts it).

Both back ends produce the same answers as the interpreters of
Figures 1-3 (differentially tested), exposing the operational content
of the paper's Section 6.3 remark: "the net effect of transforming the
program to CPS is to obscure the fact that there is only one control
stack" — the stack does not disappear, it moves into the store.
"""

from repro.machine.absplan import (
    AnfPlan,
    CpsPlan,
    PLAN_CACHE,
    PlanCache,
    compile_anf_plan,
    compile_cps_plan,
    extend_anf_plan,
    extend_cps_plan,
)
from repro.machine.code import (
    Bind,
    Branch,
    BranchJump,
    Call,
    CallK,
    Close,
    CloseF,
    CloseK,
    Code,
    Const,
    DivergeLoop,
    Halt,
    Lookup,
    MakePrim,
    Op,
    Push,
    RetK,
    TailCall,
)
from repro.machine.compile_cps import compile_cps
from repro.machine.compile_direct import compile_direct
from repro.machine.vm import MachineStats, run_code

__all__ = [
    "Code",
    "Const",
    "Lookup",
    "MakePrim",
    "Close",
    "CloseF",
    "CloseK",
    "Bind",
    "Push",
    "Call",
    "TailCall",
    "CallK",
    "RetK",
    "Branch",
    "BranchJump",
    "Op",
    "DivergeLoop",
    "Halt",
    "compile_direct",
    "compile_cps",
    "run_code",
    "MachineStats",
    "AnfPlan",
    "CpsPlan",
    "PlanCache",
    "PLAN_CACHE",
    "compile_anf_plan",
    "compile_cps_plan",
    "extend_anf_plan",
    "extend_cps_plan",
]
