"""Compiled analysis plans: flat instruction arrays for the analyzers.

Every analyzer in this repo interprets the Python AST directly: each
rule visit pattern-matches a node, hashes variable *names* into a
dict-backed store, and keys Section 4.4 judgments on ``id(term)``.
That per-visit interpretive overhead is exactly what the functional
correspondence (interpreter → abstract machine) compiles away for the
concrete semantics in :mod:`repro.machine.compile_direct` /
:mod:`repro.machine.compile_cps`; this module does the same lowering
for the *abstract* semantics.

A **plan** is a one-time, domain-independent compilation of a program:

- every judgment point (let-spine step or spine-terminating value in
  the restricted subset; every serious cps(A) term) becomes one flat
  instruction at an integer ``pc``, with explicit successor pcs — no
  ``isinstance`` dispatch and no AST re-walking in the hot loop;
- every binder and referenced free variable is resolved to a dense
  integer **slot** (total, by the unique-binder invariant), so the
  compiled engines can run over the tuple-backed
  :class:`repro.domains.store.SlotStore` instead of the name-keyed
  ``AbsStore``;
- every literal in value position (numeral, primitive, lambda) becomes
  an index into a constant pool, materialized once per run for the
  run's lattice instead of once per visit;
- the closure universe ``CL⊤`` (and ``K⊤`` for cps(A)) is precomputed,
  and every abstract closure/continuation the program can build maps
  to its compiled entry point.

Plans contain no lattice values and no per-run state, so they are
shared across runs, domains, and threads through the process-wide
:data:`PLAN_CACHE`, keyed by structural term equality — the serve
layer reuses one compilation across every request for the same
program.  The compiled engines living in
:mod:`repro.analysis.engine` replay the tree analyzers' judgments
bit-for-bit (same answers, same statistics); this module is only the
lowering.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable

from repro.analysis.common import (
    AbsClo,
    AbsCo,
    AbsCpsClo,
    closures_of_term,
    cps_closures_of_term,
    konts_of_term,
    recursion_headroom,
)
from repro.cps.ast import (
    CApp,
    CIf0,
    CLam,
    CLet,
    CLoop,
    CNum,
    CPrim,
    CPrimLet,
    CTerm,
    CVar,
    KApp,
    KLam,
)
from repro.cps.validate import cps_subterms
from repro.lang.ast import (
    App,
    If0,
    Lam,
    Let,
    Loop,
    Num,
    Prim,
    PrimApp,
    Term,
    Var,
    is_value,
)
from repro.lang.syntax import free_variables, subterms

# ----------------------------------------------------------------------
# Instruction set
# ----------------------------------------------------------------------
#
# Instructions are plain tuples whose first element is the opcode; the
# remaining operands are slots, value references, constant indices and
# successor pcs.  A *value reference* encodes both kinds of operand in
# one int: ``ref >= 0`` reads slot ``ref`` from the store, ``ref < 0``
# reads constant ``-1 - ref`` from the pool.

#: Restricted-subset (A-normal form) opcodes.
OP_TAIL = 0  #: (op, vref) — the spine ends in a value.
OP_BIND = 1  #: (op, dst_slot, vref, next_pc) — let of a value.
OP_APP = 2  #: (op, dst_slot, fun_ref, arg_ref, next_pc)
OP_IF = 3  #: (op, dst_slot, test_ref, then_pc, else_pc, next_pc)
OP_PRIM = 4  #: (op, dst_slot, binop, ref0, ref1, next_pc)
OP_LOOP = 5  #: (op, dst_slot, next_pc)

#: Superinstructions emitted by `optimize_anf_plan` only — the
#: compilers never produce them.  Each fuses the operand *decode* into
#: the opcode (bind+lookup, test+jump): the engines read the slot or
#: pool index directly instead of branching on the sign of a value
#: reference at every execution.  They replace their general form
#: in-place (one pc each), so visit counts, judgment keys and every
#: other statistic are unchanged by construction.
OP_BIND_S = 6  #: (op, dst_slot, src_slot, next_pc) — bind from a slot.
OP_BIND_C = 7  #: (op, dst_slot, const_idx, next_pc) — bind a constant.
OP_IF_S = 8  #: (op, dst_slot, test_slot, then_pc, else_pc, next_pc)

#: cps(A) opcodes.
COP_KRET = 0  #: (op, kvar_slot, vref) — a return ``(k W)``.
COP_BIND = 1  #: (op, dst_slot, vref, next_pc)
COP_CAPP = 2  #: (op, fun_ref, arg_ref, kont_cidx)
COP_CIF = 3  #: (op, kvar_slot, kont_cidx, test_ref, then_pc, else_pc)
COP_PRIM = 4  #: (op, dst_slot, binop, ref0, ref1, next_pc)
COP_CLOOP = 5  #: (op, kont_cidx)

#: cps(A) superinstructions (see the ANF ones above).
COP_BIND_S = 6  #: (op, dst_slot, src_slot, next_pc)
COP_BIND_C = 7  #: (op, dst_slot, const_idx, next_pc)
COP_CIF_S = 8  #: (op, kvar_slot, kont_cidx, test_slot, then_pc, else_pc)

#: Version of the instruction set itself.  Folded into the persistent
#: plan-store key (`repro.incr.plans`) so serialized plans from an
#: older opcode vocabulary are never decoded by a newer engine.
ENGINE_SCHEMA = 2

#: Plan tiers selectable via the ``plan_tier`` knob on the plan-engine
#: entry points: ``"opt"`` (the default) runs `optimize_anf_plan` /
#: `optimize_cps_plan` over the compiled arrays, ``"base"`` runs the
#: compiler output untouched.  Both tiers are bit-identical in answers
#: and statistics (the differential suite enforces it).
PLAN_TIERS = ("opt", "base")


def check_plan_tier(tier: str) -> str:
    """Validate a plan-tier name."""
    if tier not in PLAN_TIERS:
        raise ValueError(
            f"plan_tier must be one of {PLAN_TIERS}, got {tier!r}"
        )
    return tier


def encode_const(index: int) -> int:
    """The value reference for constant-pool entry ``index``."""
    return -1 - index


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------


class AnfPlan:
    """A compiled restricted-subset program.

    One plan serves the direct, semantic-CPS and polyvariant engines:
    the instruction stream encodes the shared let-spine structure, and
    each engine interprets it with its own store/continuation model.
    """

    __slots__ = (
        "entry_pc",
        "code",
        "terms",
        "slot_names",
        "slot_of",
        "consts",
        "entries",
        "cl_top",
        "free_names",
        "const_records",
        "optimized",
    )

    def __init__(
        self,
        entry_pc: int,
        code: tuple[tuple, ...],
        terms: tuple[Term, ...],
        slot_names: tuple[str, ...],
        slot_of: dict[str, int],
        consts: tuple[tuple, ...],
        entries: dict[AbsClo, tuple[int, int]],
        cl_top: frozenset,
        free_names: frozenset,
        const_records: "tuple | None" = None,
        optimized: bool = False,
    ) -> None:
        self.entry_pc = entry_pc
        #: Flat instruction tuples, indexed by pc.
        self.code = code
        #: The source node of each pc (trace labels, error messages).
        self.terms = terms
        #: Slot index → variable name (total over binders + free refs).
        self.slot_names = slot_names
        self.slot_of = slot_of
        #: Domain-independent constant descriptors:
        #: ``("num", n) | ("prim", name) | ("clo", Lam)``.
        self.consts = consts
        #: Abstract closure → ``(param_slot, body_pc)``.
        self.entries = entries
        #: ``closures_of_term`` of the compiled program (CL⊤ seed).
        self.cl_top = cl_top
        #: Free variables of the program (polyvariant initial env).
        self.free_names = free_names
        #: Optimizer-prebuilt companions to ``consts`` (interned
        #: ``AbsClo`` records + free-variable captures), or None on
        #: unoptimized plans — see `_anf_const_records`.
        self.const_records = const_records
        #: True once `optimize_anf_plan` has run over this plan.
        self.optimized = optimized


class CpsPlan:
    """A compiled cps(A) program for the syntactic-CPS engine."""

    __slots__ = (
        "entry_pc",
        "code",
        "terms",
        "slot_names",
        "slot_of",
        "consts",
        "cps_entries",
        "kont_entries",
        "cl_top",
        "k_top",
        "const_records",
        "optimized",
    )

    def __init__(
        self,
        entry_pc: int,
        code: tuple[tuple, ...],
        terms: tuple[CTerm, ...],
        slot_names: tuple[str, ...],
        slot_of: dict[str, int],
        consts: tuple[tuple, ...],
        cps_entries: dict[AbsCpsClo, tuple[int, int, int]],
        kont_entries: dict[AbsCo, tuple[int, int]],
        cl_top: frozenset,
        k_top: frozenset,
        const_records: "tuple | None" = None,
        optimized: bool = False,
    ) -> None:
        self.entry_pc = entry_pc
        self.code = code
        self.terms = terms
        self.slot_names = slot_names
        self.slot_of = slot_of
        #: ``("num", n) | ("cps_prim", name) | ("cps_clo", CLam)
        #: | ("konts", KLam)``.
        self.consts = consts
        #: Abstract CPS closure → ``(param_slot, kparam_slot, body_pc)``.
        self.cps_entries = cps_entries
        #: Abstract continuation → ``(param_slot, body_pc)``.
        self.kont_entries = kont_entries
        self.cl_top = cl_top
        self.k_top = k_top
        #: Optimizer-prebuilt companions to ``consts`` (interned
        #: ``AbsCpsClo``/``AbsCo`` records), or None when unoptimized.
        self.const_records = const_records
        #: True once `optimize_cps_plan` has run over this plan.
        self.optimized = optimized


# ----------------------------------------------------------------------
# Compiler for the restricted subset
# ----------------------------------------------------------------------


class _AnfCompiler:
    """Lowers restricted-subset terms to `AnfPlan` instruction arrays.

    Blocks are memoized by node identity, mirroring how the tree
    analyzers key Section 4.4 judgments on ``id(term)``: a shared node
    compiles to one pc, distinct-but-equal nodes to distinct pcs.
    """

    def __init__(self) -> None:
        self.code: list[list] = []
        self.terms: list[Term] = []
        self.slot_names: list[str] = []
        self.slot_of: dict[str, int] = {}
        self.consts: list[tuple] = []
        self._const_of: dict[Hashable, int] = {}
        self._block_of: dict[int, int] = {}
        self.entries: dict[AbsClo, tuple[int, int]] = {}

    @classmethod
    def extending(cls, plan: AnfPlan) -> "_AnfCompiler":
        """A compiler whose arrays continue an existing plan's, for
        per-run extension code (initial-store closure bodies).  The
        plan itself is never mutated."""
        comp = cls()
        comp.code = [list(instr) for instr in plan.code]
        comp.terms = list(plan.terms)
        comp.slot_names = list(plan.slot_names)
        comp.slot_of = dict(plan.slot_of)
        comp.consts = list(plan.consts)
        comp._const_of = {desc: i for i, desc in enumerate(plan.consts)}
        comp.entries = dict(plan.entries)
        return comp

    def slot(self, name: str) -> int:
        index = self.slot_of.get(name)
        if index is None:
            index = len(self.slot_names)
            self.slot_of[name] = index
            self.slot_names.append(name)
        return index

    def vref(self, value: Term) -> int:
        if isinstance(value, Var):
            return self.slot(value.name)
        if isinstance(value, Num):
            desc = ("num", value.value)
        elif isinstance(value, Prim):
            desc = ("prim", value.name)
        elif isinstance(value, Lam):
            desc = ("clo", value)
        else:
            raise TypeError(f"not a syntactic value: {value!r}")
        index = self._const_of.get(desc)
        if index is None:
            index = len(self.consts)
            self._const_of[desc] = index
            self.consts.append(desc)
        return encode_const(index)

    def closure_blocks(self, term: Term) -> None:
        """Compile an entry block for every lambda under ``term``."""
        for sub in subterms(term):
            if isinstance(sub, Lam):
                clo = AbsClo(sub.param, sub.body)
                if clo not in self.entries:
                    self.entries[clo] = (
                        self.slot(sub.param),
                        self.block(sub.body),
                    )

    def block(self, term: Term) -> int:
        """The entry pc of ``term``, compiling its let-spine (and,
        recursively, branch targets) on first encounter."""
        code = self.code
        entry: int | None = None
        patch: tuple[int, int] | None = None
        while True:
            pc = self._block_of.get(id(term))
            if pc is not None:
                if patch is not None:
                    code[patch[0]][patch[1]] = pc
                return entry if entry is not None else pc
            pc = len(code)
            self._block_of[id(term)] = pc
            if entry is None:
                entry = pc
            if patch is not None:
                code[patch[0]][patch[1]] = pc
                patch = None
            if is_value(term):
                code.append([OP_TAIL, self.vref(term)])
                self.terms.append(term)
                return entry
            if not isinstance(term, Let):
                raise TypeError(
                    f"term is not in the restricted subset: {term!r}"
                )
            name, rhs, body = term.name, term.rhs, term.body
            dst = self.slot(name)
            if is_value(rhs):
                code.append([OP_BIND, dst, self.vref(rhs), -1])
                self.terms.append(term)
                patch = (pc, 3)
            elif isinstance(rhs, App):
                code.append(
                    [OP_APP, dst, self.vref(rhs.fun), self.vref(rhs.arg), -1]
                )
                self.terms.append(term)
                patch = (pc, 4)
            elif isinstance(rhs, If0):
                instr = [OP_IF, dst, self.vref(rhs.test), -1, -1, -1]
                code.append(instr)
                self.terms.append(term)
                instr[3] = self.block(rhs.then)
                instr[4] = self.block(rhs.orelse)
                patch = (pc, 5)
            elif isinstance(rhs, PrimApp):
                code.append(
                    [
                        OP_PRIM,
                        dst,
                        rhs.op,
                        self.vref(rhs.args[0]),
                        self.vref(rhs.args[1]),
                        -1,
                    ]
                )
                self.terms.append(term)
                patch = (pc, 5)
            elif isinstance(rhs, Loop):
                code.append([OP_LOOP, dst, -1])
                self.terms.append(term)
                patch = (pc, 2)
            else:
                raise TypeError(f"invalid let right-hand side: {rhs!r}")
            term = body

    def finish(self, entry_pc: int, term: Term) -> AnfPlan:
        return AnfPlan(
            entry_pc,
            tuple(tuple(instr) for instr in self.code),
            tuple(self.terms),
            tuple(self.slot_names),
            dict(self.slot_of),
            tuple(self.consts),
            dict(self.entries),
            closures_of_term(term),
            frozenset(free_variables(term)),
        )

    def extension(self, bodies: "list[AbsClo]") -> "AnfExtension":
        """Compile the bodies of closures assumed in an initial store
        and package the extended arrays (plan arrays are shared, only
        the copies grow)."""
        for clo in bodies:
            if clo not in self.entries:
                self.entries[clo] = (
                    self.slot(clo.param),
                    self.block(clo.body),
                )
                self.closure_blocks(clo.body)
        return AnfExtension(
            tuple(tuple(instr) for instr in self.code),
            tuple(self.terms),
            tuple(self.slot_names),
            dict(self.slot_of),
            tuple(self.consts),
            dict(self.entries),
        )


class AnfExtension:
    """Per-run extended arrays: a plan plus initial-store closure code."""

    __slots__ = (
        "code", "terms", "slot_names", "slot_of", "consts", "entries"
    )

    def __init__(self, code, terms, slot_names, slot_of, consts, entries):
        self.code = code
        self.terms = terms
        self.slot_names = slot_names
        self.slot_of = slot_of
        self.consts = consts
        self.entries = entries


def compile_anf_plan(term: Term) -> AnfPlan:
    """Lower a restricted-subset program to a flat `AnfPlan`."""
    with recursion_headroom():
        comp = _AnfCompiler()
        entry_pc = comp.block(term)
        comp.closure_blocks(term)
        return comp.finish(entry_pc, term)


def extend_anf_plan(plan: AnfPlan, closures: "list[AbsClo]") -> AnfExtension:
    """Extend ``plan`` with compiled bodies for initial-store closures
    (those not already compiled as part of the program)."""
    with recursion_headroom():
        comp = _AnfCompiler.extending(plan)
        return comp.extension(closures)


# ----------------------------------------------------------------------
# Compiler for cps(A)
# ----------------------------------------------------------------------


class _CpsCompiler:
    """Lowers cps(A) terms to `CpsPlan` instruction arrays."""

    def __init__(self) -> None:
        self.code: list[list] = []
        self.terms: list[CTerm] = []
        self.slot_names: list[str] = []
        self.slot_of: dict[str, int] = {}
        self.consts: list[tuple] = []
        self._const_of: dict[Hashable, int] = {}
        self._block_of: dict[int, int] = {}
        self.cps_entries: dict[AbsCpsClo, tuple[int, int, int]] = {}
        self.kont_entries: dict[AbsCo, tuple[int, int]] = {}

    @classmethod
    def extending(cls, plan: CpsPlan) -> "_CpsCompiler":
        comp = cls()
        comp.code = [list(instr) for instr in plan.code]
        comp.terms = list(plan.terms)
        comp.slot_names = list(plan.slot_names)
        comp.slot_of = dict(plan.slot_of)
        comp.consts = list(plan.consts)
        comp._const_of = {desc: i for i, desc in enumerate(plan.consts)}
        comp.cps_entries = dict(plan.cps_entries)
        comp.kont_entries = dict(plan.kont_entries)
        return comp

    def slot(self, name: str) -> int:
        index = self.slot_of.get(name)
        if index is None:
            index = len(self.slot_names)
            self.slot_of[name] = index
            self.slot_names.append(name)
        return index

    def const(self, desc: tuple) -> int:
        index = self._const_of.get(desc)
        if index is None:
            index = len(self.consts)
            self._const_of[desc] = index
            self.consts.append(desc)
        return index

    def vref(self, value) -> int:
        if isinstance(value, CVar):
            return self.slot(value.name)
        if isinstance(value, CNum):
            desc = ("num", value.value)
        elif isinstance(value, CPrim):
            desc = ("cps_prim", value.name)
        elif isinstance(value, CLam):
            desc = ("cps_clo", value)
        else:
            raise TypeError(f"not a cps(A) value: {value!r}")
        return encode_const(self.const(desc))

    def kont(self, klam: KLam) -> int:
        """The constant index of a continuation value, registering its
        compiled entry point."""
        co = AbsCo(klam.param, klam.body)
        if co not in self.kont_entries:
            self.kont_entries[co] = (
                self.slot(klam.param),
                self.block(klam.body),
            )
        return self.const(("konts", klam))

    def closure_blocks(self, term: CTerm) -> None:
        """Compile an entry block for every user lambda under ``term``
        (continuation lambdas are handled at their use sites)."""
        for sub in cps_subterms(term):
            if isinstance(sub, CLam):
                clo = AbsCpsClo(sub.param, sub.kparam, sub.body)
                if clo not in self.cps_entries:
                    self.cps_entries[clo] = (
                        self.slot(sub.param),
                        self.slot(sub.kparam),
                        self.block(sub.body),
                    )

    def block(self, term: CTerm) -> int:
        code = self.code
        entry: int | None = None
        patch: tuple[int, int] | None = None
        while True:
            pc = self._block_of.get(id(term))
            if pc is not None:
                if patch is not None:
                    code[patch[0]][patch[1]] = pc
                return entry if entry is not None else pc
            pc = len(code)
            self._block_of[id(term)] = pc
            if entry is None:
                entry = pc
            if patch is not None:
                code[patch[0]][patch[1]] = pc
                patch = None
            if isinstance(term, KApp):
                code.append(
                    [COP_KRET, self.slot(term.kvar), self.vref(term.value)]
                )
                self.terms.append(term)
                return entry
            if isinstance(term, CLet):
                code.append(
                    [
                        COP_BIND,
                        self.slot(term.name),
                        self.vref(term.value),
                        -1,
                    ]
                )
                self.terms.append(term)
                patch = (pc, 3)
                term = term.body
            elif isinstance(term, CApp):
                instr = [
                    COP_CAPP, self.vref(term.fun), self.vref(term.arg), -1
                ]
                code.append(instr)
                self.terms.append(term)
                instr[3] = self.kont(term.kont)
                return entry
            elif isinstance(term, CIf0):
                instr = [
                    COP_CIF,
                    self.slot(term.kvar),
                    -1,
                    self.vref(term.test),
                    -1,
                    -1,
                ]
                code.append(instr)
                self.terms.append(term)
                instr[2] = self.kont(term.kont)
                instr[4] = self.block(term.then)
                instr[5] = self.block(term.orelse)
                return entry
            elif isinstance(term, CPrimLet):
                code.append(
                    [
                        COP_PRIM,
                        self.slot(term.name),
                        term.op,
                        self.vref(term.args[0]),
                        self.vref(term.args[1]),
                        -1,
                    ]
                )
                self.terms.append(term)
                patch = (pc, 5)
                term = term.body
            elif isinstance(term, CLoop):
                instr = [COP_CLOOP, -1]
                code.append(instr)
                self.terms.append(term)
                instr[1] = self.kont(term.kont)
                return entry
            else:
                raise TypeError(f"not a cps(A) term: {term!r}")

    def finish(self, entry_pc: int, term: CTerm) -> CpsPlan:
        return CpsPlan(
            entry_pc,
            tuple(tuple(instr) for instr in self.code),
            tuple(self.terms),
            tuple(self.slot_names),
            dict(self.slot_of),
            tuple(self.consts),
            dict(self.cps_entries),
            dict(self.kont_entries),
            cps_closures_of_term(term),
            konts_of_term(term),
        )

    def extension(
        self,
        closures: "list[AbsCpsClo]",
        konts: "list[AbsCo]",
    ) -> "CpsExtension":
        for clo in closures:
            if clo not in self.cps_entries:
                self.cps_entries[clo] = (
                    self.slot(clo.param),
                    self.slot(clo.kparam),
                    self.block(clo.body),
                )
                self.closure_blocks(clo.body)
        for co in konts:
            if co not in self.kont_entries:
                self.kont_entries[co] = (
                    self.slot(co.param),
                    self.block(co.body),
                )
                self.closure_blocks(co.body)
        return CpsExtension(
            tuple(tuple(instr) for instr in self.code),
            tuple(self.terms),
            tuple(self.slot_names),
            dict(self.slot_of),
            tuple(self.consts),
            dict(self.cps_entries),
            dict(self.kont_entries),
        )


class CpsExtension:
    """Per-run extended arrays for a `CpsPlan`."""

    __slots__ = (
        "code",
        "terms",
        "slot_names",
        "slot_of",
        "consts",
        "cps_entries",
        "kont_entries",
    )

    def __init__(
        self, code, terms, slot_names, slot_of, consts, cps_entries,
        kont_entries,
    ):
        self.code = code
        self.terms = terms
        self.slot_names = slot_names
        self.slot_of = slot_of
        self.consts = consts
        self.cps_entries = cps_entries
        self.kont_entries = kont_entries


def compile_cps_plan(term: CTerm) -> CpsPlan:
    """Lower a cps(A) program to a flat `CpsPlan`."""
    with recursion_headroom():
        comp = _CpsCompiler()
        entry_pc = comp.block(term)
        comp.closure_blocks(term)
        return comp.finish(entry_pc, term)


def extend_cps_plan(
    plan: CpsPlan,
    closures: "list[AbsCpsClo]",
    konts: "list[AbsCo]",
) -> CpsExtension:
    """Extend ``plan`` with compiled bodies for initial-store closures
    and continuations."""
    with recursion_headroom():
        comp = _CpsCompiler.extending(plan)
        return comp.extension(closures, konts)


# ----------------------------------------------------------------------
# The peephole optimizer
# ----------------------------------------------------------------------
#
# `optimize_anf_plan` / `optimize_cps_plan` rewrite a compiled plan
# into a strictly-equivalent faster one.  The judgment structure is
# load-bearing: every pc is one `tick` and one judgment key in the
# engines, so the optimizer never adds, removes or renumbers
# instructions — it only (a) specializes opcodes so the operand decode
# happens once at optimization time instead of once per execution
# (superinstruction fusion: bind+lookup, test+jump), (b) prebuilds the
# domain-independent halves of the constant pool (interned
# `AbsClo`/`AbsCpsClo`/`AbsCo` records shared with the entry tables,
# and the polyvariant free-variable captures), and (c) drops slots the
# program can neither read nor write (dead-slot elimination, a
# consistent renumbering of the store layout).  All three passes are
# answer- and statistics-preserving by construction, and the
# differential suite (`tests/machine/test_plan_opt.py`) enforces it.


def _keep_map(total: int, live: set) -> "tuple | None":
    """Old-slot → new-slot map dropping dead slots, or None when every
    slot survives (the common case: the compilers only mint slots for
    binders and references, which are live by definition)."""
    if len(live) == total:
        return None
    remap = [-1] * total
    nxt = 0
    for slot in range(total):
        if slot in live:
            remap[slot] = nxt
            nxt += 1
    return tuple(remap)


def _remap_names(slot_names, slot_of, remap):
    if remap is None:
        return slot_names, slot_of
    names = tuple(
        name for slot, name in enumerate(slot_names) if remap[slot] >= 0
    )
    return names, {name: index for index, name in enumerate(names)}


def _anf_const_records(consts, entries) -> tuple:
    """Prebuilt constant-pool companions: one `AbsClo` per lambda
    constant — interned against the entry table so runtime closure
    values are the very objects the entry lookup caches key on — plus
    the sorted free-variable capture the polyvariant engine needs."""
    canon = {clo: clo for clo in entries}
    records = []
    for desc in consts:
        if desc[0] == "clo":
            lam = desc[1]
            clo = AbsClo(lam.param, lam.body)
            clo = canon.get(clo, clo)
            needed = tuple(sorted(free_variables(lam.body) - {lam.param}))
            records.append((clo, needed))
        else:
            records.append(None)
    return tuple(records)


def _cps_const_records(consts, cps_entries, kont_entries) -> tuple:
    canon = {clo: clo for clo in cps_entries}
    kanon = {co: co for co in kont_entries}
    records = []
    for desc in consts:
        kind = desc[0]
        if kind == "cps_clo":
            lam = desc[1]
            clo = AbsCpsClo(lam.param, lam.kparam, lam.body)
            records.append(canon.get(clo, clo))
        elif kind == "konts":
            klam = desc[1]
            co = AbsCo(klam.param, klam.body)
            records.append(kanon.get(co, co))
        else:
            records.append(None)
    return tuple(records)


def optimize_anf_plan(plan: AnfPlan) -> AnfPlan:
    """The peephole-optimized equivalent of ``plan`` (idempotent)."""
    if plan.optimized:
        return plan
    live: set = set()
    for instr in plan.code:
        op = instr[0]
        if op == OP_TAIL:
            if instr[1] >= 0:
                live.add(instr[1])
            continue
        live.add(instr[1])
        if op == OP_BIND or op == OP_IF:
            if instr[2] >= 0:
                live.add(instr[2])
        elif op == OP_APP:
            if instr[2] >= 0:
                live.add(instr[2])
            if instr[3] >= 0:
                live.add(instr[3])
        elif op == OP_PRIM:
            if instr[3] >= 0:
                live.add(instr[3])
            if instr[4] >= 0:
                live.add(instr[4])
    for param_slot, _ in plan.entries.values():
        live.add(param_slot)
    remap = _keep_map(len(plan.slot_names), live)

    def s(slot: int) -> int:
        return slot if remap is None else remap[slot]

    def r(ref: int) -> int:
        return ref if ref < 0 or remap is None else remap[ref]

    code = []
    for instr in plan.code:
        op = instr[0]
        if op == OP_TAIL:
            code.append((OP_TAIL, r(instr[1])))
        elif op == OP_BIND:
            ref = instr[2]
            if ref >= 0:
                code.append((OP_BIND_S, s(instr[1]), s(ref), instr[3]))
            else:
                code.append((OP_BIND_C, s(instr[1]), -1 - ref, instr[3]))
        elif op == OP_APP:
            code.append(
                (OP_APP, s(instr[1]), r(instr[2]), r(instr[3]), instr[4])
            )
        elif op == OP_IF:
            ref = instr[2]
            if ref >= 0:
                code.append(
                    (OP_IF_S, s(instr[1]), s(ref), instr[3], instr[4],
                     instr[5])
                )
            else:
                code.append(
                    (OP_IF, s(instr[1]), ref, instr[3], instr[4], instr[5])
                )
        elif op == OP_PRIM:
            code.append(
                (OP_PRIM, s(instr[1]), instr[2], r(instr[3]), r(instr[4]),
                 instr[5])
            )
        else:  # OP_LOOP
            code.append((OP_LOOP, s(instr[1]), instr[2]))
    slot_names, slot_of = _remap_names(
        plan.slot_names, plan.slot_of, remap
    )
    entries = {
        clo: (s(param_slot), body_pc)
        for clo, (param_slot, body_pc) in plan.entries.items()
    }
    return AnfPlan(
        plan.entry_pc,
        tuple(code),
        plan.terms,
        slot_names,
        slot_of,
        plan.consts,
        entries,
        plan.cl_top,
        plan.free_names,
        const_records=_anf_const_records(plan.consts, entries),
        optimized=True,
    )


def optimize_cps_plan(plan: CpsPlan) -> CpsPlan:
    """The peephole-optimized equivalent of ``plan`` (idempotent)."""
    if plan.optimized:
        return plan
    live: set = set()
    for instr in plan.code:
        op = instr[0]
        if op == COP_KRET:
            live.add(instr[1])
            if instr[2] >= 0:
                live.add(instr[2])
        elif op == COP_BIND:
            live.add(instr[1])
            if instr[2] >= 0:
                live.add(instr[2])
        elif op == COP_CAPP:
            if instr[1] >= 0:
                live.add(instr[1])
            if instr[2] >= 0:
                live.add(instr[2])
        elif op == COP_CIF:
            live.add(instr[1])
            if instr[3] >= 0:
                live.add(instr[3])
        elif op == COP_PRIM:
            live.add(instr[1])
            if instr[3] >= 0:
                live.add(instr[3])
            if instr[4] >= 0:
                live.add(instr[4])
    for param_slot, kparam_slot, _ in plan.cps_entries.values():
        live.add(param_slot)
        live.add(kparam_slot)
    for param_slot, _ in plan.kont_entries.values():
        live.add(param_slot)
    remap = _keep_map(len(plan.slot_names), live)

    def s(slot: int) -> int:
        return slot if remap is None else remap[slot]

    def r(ref: int) -> int:
        return ref if ref < 0 or remap is None else remap[ref]

    code = []
    for instr in plan.code:
        op = instr[0]
        if op == COP_KRET:
            code.append((COP_KRET, s(instr[1]), r(instr[2])))
        elif op == COP_BIND:
            ref = instr[2]
            if ref >= 0:
                code.append((COP_BIND_S, s(instr[1]), s(ref), instr[3]))
            else:
                code.append((COP_BIND_C, s(instr[1]), -1 - ref, instr[3]))
        elif op == COP_CAPP:
            code.append((COP_CAPP, r(instr[1]), r(instr[2]), instr[3]))
        elif op == COP_CIF:
            ref = instr[3]
            if ref >= 0:
                code.append(
                    (COP_CIF_S, s(instr[1]), instr[2], s(ref), instr[4],
                     instr[5])
                )
            else:
                code.append(
                    (COP_CIF, s(instr[1]), instr[2], ref, instr[4],
                     instr[5])
                )
        elif op == COP_PRIM:
            code.append(
                (COP_PRIM, s(instr[1]), instr[2], r(instr[3]), r(instr[4]),
                 instr[5])
            )
        else:  # COP_CLOOP
            code.append((COP_CLOOP, instr[1]))
    slot_names, slot_of = _remap_names(
        plan.slot_names, plan.slot_of, remap
    )
    cps_entries = {
        clo: (s(param_slot), s(kparam_slot), body_pc)
        for clo, (param_slot, kparam_slot, body_pc)
        in plan.cps_entries.items()
    }
    kont_entries = {
        co: (s(param_slot), body_pc)
        for co, (param_slot, body_pc) in plan.kont_entries.items()
    }
    return CpsPlan(
        plan.entry_pc,
        tuple(code),
        plan.terms,
        slot_names,
        slot_of,
        plan.consts,
        cps_entries,
        kont_entries,
        plan.cl_top,
        plan.k_top,
        const_records=_cps_const_records(
            plan.consts, cps_entries, kont_entries
        ),
        optimized=True,
    )


# ----------------------------------------------------------------------
# The cross-run plan cache
# ----------------------------------------------------------------------


class PlanCache:
    """An LRU cache of compiled plans, keyed by structural term
    equality (the canonical hash of frozen AST nodes).

    Thread-safe: the serve layer's worker pool shares the process-wide
    :data:`PLAN_CACHE`, so repeated requests for the same program skip
    compilation entirely.  Plans are immutable and domain-independent,
    so sharing across domains and concurrent runs is sound.

    A persistent tier (`repro.incr.plans.PlanPersistTier`, attached
    via :meth:`attach_persist`) sits between the in-memory LRU and the
    compiler: a miss first tries to *load* the serialized base plan
    from the sqlite store, and only compiles — then persists — on a
    disk miss.  Optimized-tier entries are always derived in-process
    from the base plan (`optimize_anf_plan` is cheap and depends on
    the engine schema), so only base plans ever touch disk.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._plans: "OrderedDict[tuple, object]" = OrderedDict()
        self._lock = threading.Lock()
        self._persist = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.compiles = 0
        self.disk_loads = 0
        self.disk_misses = 0
        self.persisted = 0

    def attach_persist(self, tier) -> None:
        """Attach a persistent plan tier (``None`` detaches).  The
        tier must provide ``load(kind, term) -> plan | None`` and
        ``save(kind, term, plan) -> bool``."""
        with self._lock:
            self._persist = tier

    @property
    def persist(self):
        """The attached persistent tier, if any."""
        return self._persist

    def _get(self, key: tuple, build_fn):
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self.hits += 1
                return plan
            self.misses += 1
        plan = build_fn(key[1])
        with self._lock:
            existing = self._plans.get(key)
            if existing is not None:
                return existing
            self._plans[key] = plan
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
                self.evictions += 1
        return plan

    def _load_or_compile(self, kind: str, term, compile_fn):
        """Build a base plan: persistent tier first, compiler second.
        Freshly compiled plans are written back to the tier."""
        # Trace-context spans (no-ops outside an active request trace)
        # so `server_timing` can attribute the one-time plan cost.
        from repro.obs.trace import span as trace_span

        tier = self._persist
        if tier is not None:
            with trace_span("plan.load", kind=kind):
                plan = tier.load(kind, term)
            if plan is not None:
                with self._lock:
                    self.disk_loads += 1
                return plan
            with self._lock:
                self.disk_misses += 1
        with trace_span("plan.compile", kind=kind):
            plan = compile_fn(term)
        with self._lock:
            self.compiles += 1
        if tier is not None and tier.save(kind, term, plan):
            with self._lock:
                self.persisted += 1
        return plan

    def anf_plan(self, term: Term, tier: str = "opt") -> AnfPlan:
        """The cached (or loaded, or freshly compiled) plan for
        ``term`` at plan tier ``tier``."""
        if tier != "base":
            check_plan_tier(tier)
            return self._get(
                ("anf-opt", term),
                lambda t: optimize_anf_plan(self.anf_plan(t, "base")),
            )
        return self._get(
            ("anf", term),
            lambda t: self._load_or_compile("anf", t, compile_anf_plan),
        )

    def cps_plan(self, term: CTerm, tier: str = "opt") -> CpsPlan:
        """The cached (or loaded, or freshly compiled) plan for the
        cps(A) program ``term`` at plan tier ``tier``."""
        if tier != "base":
            check_plan_tier(tier)
            return self._get(
                ("cps-opt", term),
                lambda t: optimize_cps_plan(self.cps_plan(t, "base")),
            )
        return self._get(
            ("cps", term),
            lambda t: self._load_or_compile("cps", t, compile_cps_plan),
        )

    def clear(self) -> None:
        """Drop every cached plan (counters are kept)."""
        with self._lock:
            self._plans.clear()

    def snapshot(self) -> dict:
        """Counters for ``/metricsz`` and test assertions."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "compiles": self.compiles,
                "disk_loads": self.disk_loads,
                "disk_misses": self.disk_misses,
                "persisted": self.persisted,
                "size": len(self._plans),
                "capacity": self.capacity,
                "persist_attached": self._persist is not None,
            }


#: The process-wide plan cache shared by serve, survey, lint and bench.
PLAN_CACHE = PlanCache()
