"""Compiled analysis plans: flat instruction arrays for the analyzers.

Every analyzer in this repo interprets the Python AST directly: each
rule visit pattern-matches a node, hashes variable *names* into a
dict-backed store, and keys Section 4.4 judgments on ``id(term)``.
That per-visit interpretive overhead is exactly what the functional
correspondence (interpreter → abstract machine) compiles away for the
concrete semantics in :mod:`repro.machine.compile_direct` /
:mod:`repro.machine.compile_cps`; this module does the same lowering
for the *abstract* semantics.

A **plan** is a one-time, domain-independent compilation of a program:

- every judgment point (let-spine step or spine-terminating value in
  the restricted subset; every serious cps(A) term) becomes one flat
  instruction at an integer ``pc``, with explicit successor pcs — no
  ``isinstance`` dispatch and no AST re-walking in the hot loop;
- every binder and referenced free variable is resolved to a dense
  integer **slot** (total, by the unique-binder invariant), so the
  compiled engines can run over the tuple-backed
  :class:`repro.domains.store.SlotStore` instead of the name-keyed
  ``AbsStore``;
- every literal in value position (numeral, primitive, lambda) becomes
  an index into a constant pool, materialized once per run for the
  run's lattice instead of once per visit;
- the closure universe ``CL⊤`` (and ``K⊤`` for cps(A)) is precomputed,
  and every abstract closure/continuation the program can build maps
  to its compiled entry point.

Plans contain no lattice values and no per-run state, so they are
shared across runs, domains, and threads through the process-wide
:data:`PLAN_CACHE`, keyed by structural term equality — the serve
layer reuses one compilation across every request for the same
program.  The compiled engines living in
:mod:`repro.analysis.engine` replay the tree analyzers' judgments
bit-for-bit (same answers, same statistics); this module is only the
lowering.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable

from repro.analysis.common import (
    AbsClo,
    AbsCo,
    AbsCpsClo,
    closures_of_term,
    cps_closures_of_term,
    konts_of_term,
    recursion_headroom,
)
from repro.cps.ast import (
    CApp,
    CIf0,
    CLam,
    CLet,
    CLoop,
    CNum,
    CPrim,
    CPrimLet,
    CTerm,
    CVar,
    KApp,
    KLam,
)
from repro.cps.validate import cps_subterms
from repro.lang.ast import (
    App,
    If0,
    Lam,
    Let,
    Loop,
    Num,
    Prim,
    PrimApp,
    Term,
    Var,
    is_value,
)
from repro.lang.syntax import free_variables, subterms

# ----------------------------------------------------------------------
# Instruction set
# ----------------------------------------------------------------------
#
# Instructions are plain tuples whose first element is the opcode; the
# remaining operands are slots, value references, constant indices and
# successor pcs.  A *value reference* encodes both kinds of operand in
# one int: ``ref >= 0`` reads slot ``ref`` from the store, ``ref < 0``
# reads constant ``-1 - ref`` from the pool.

#: Restricted-subset (A-normal form) opcodes.
OP_TAIL = 0  #: (op, vref) — the spine ends in a value.
OP_BIND = 1  #: (op, dst_slot, vref, next_pc) — let of a value.
OP_APP = 2  #: (op, dst_slot, fun_ref, arg_ref, next_pc)
OP_IF = 3  #: (op, dst_slot, test_ref, then_pc, else_pc, next_pc)
OP_PRIM = 4  #: (op, dst_slot, binop, ref0, ref1, next_pc)
OP_LOOP = 5  #: (op, dst_slot, next_pc)

#: cps(A) opcodes.
COP_KRET = 0  #: (op, kvar_slot, vref) — a return ``(k W)``.
COP_BIND = 1  #: (op, dst_slot, vref, next_pc)
COP_CAPP = 2  #: (op, fun_ref, arg_ref, kont_cidx)
COP_CIF = 3  #: (op, kvar_slot, kont_cidx, test_ref, then_pc, else_pc)
COP_PRIM = 4  #: (op, dst_slot, binop, ref0, ref1, next_pc)
COP_CLOOP = 5  #: (op, kont_cidx)


def encode_const(index: int) -> int:
    """The value reference for constant-pool entry ``index``."""
    return -1 - index


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------


class AnfPlan:
    """A compiled restricted-subset program.

    One plan serves the direct, semantic-CPS and polyvariant engines:
    the instruction stream encodes the shared let-spine structure, and
    each engine interprets it with its own store/continuation model.
    """

    __slots__ = (
        "entry_pc",
        "code",
        "terms",
        "slot_names",
        "slot_of",
        "consts",
        "entries",
        "cl_top",
        "free_names",
    )

    def __init__(
        self,
        entry_pc: int,
        code: tuple[tuple, ...],
        terms: tuple[Term, ...],
        slot_names: tuple[str, ...],
        slot_of: dict[str, int],
        consts: tuple[tuple, ...],
        entries: dict[AbsClo, tuple[int, int]],
        cl_top: frozenset,
        free_names: frozenset,
    ) -> None:
        self.entry_pc = entry_pc
        #: Flat instruction tuples, indexed by pc.
        self.code = code
        #: The source node of each pc (trace labels, error messages).
        self.terms = terms
        #: Slot index → variable name (total over binders + free refs).
        self.slot_names = slot_names
        self.slot_of = slot_of
        #: Domain-independent constant descriptors:
        #: ``("num", n) | ("prim", name) | ("clo", Lam)``.
        self.consts = consts
        #: Abstract closure → ``(param_slot, body_pc)``.
        self.entries = entries
        #: ``closures_of_term`` of the compiled program (CL⊤ seed).
        self.cl_top = cl_top
        #: Free variables of the program (polyvariant initial env).
        self.free_names = free_names


class CpsPlan:
    """A compiled cps(A) program for the syntactic-CPS engine."""

    __slots__ = (
        "entry_pc",
        "code",
        "terms",
        "slot_names",
        "slot_of",
        "consts",
        "cps_entries",
        "kont_entries",
        "cl_top",
        "k_top",
    )

    def __init__(
        self,
        entry_pc: int,
        code: tuple[tuple, ...],
        terms: tuple[CTerm, ...],
        slot_names: tuple[str, ...],
        slot_of: dict[str, int],
        consts: tuple[tuple, ...],
        cps_entries: dict[AbsCpsClo, tuple[int, int, int]],
        kont_entries: dict[AbsCo, tuple[int, int]],
        cl_top: frozenset,
        k_top: frozenset,
    ) -> None:
        self.entry_pc = entry_pc
        self.code = code
        self.terms = terms
        self.slot_names = slot_names
        self.slot_of = slot_of
        #: ``("num", n) | ("cps_prim", name) | ("cps_clo", CLam)
        #: | ("konts", KLam)``.
        self.consts = consts
        #: Abstract CPS closure → ``(param_slot, kparam_slot, body_pc)``.
        self.cps_entries = cps_entries
        #: Abstract continuation → ``(param_slot, body_pc)``.
        self.kont_entries = kont_entries
        self.cl_top = cl_top
        self.k_top = k_top


# ----------------------------------------------------------------------
# Compiler for the restricted subset
# ----------------------------------------------------------------------


class _AnfCompiler:
    """Lowers restricted-subset terms to `AnfPlan` instruction arrays.

    Blocks are memoized by node identity, mirroring how the tree
    analyzers key Section 4.4 judgments on ``id(term)``: a shared node
    compiles to one pc, distinct-but-equal nodes to distinct pcs.
    """

    def __init__(self) -> None:
        self.code: list[list] = []
        self.terms: list[Term] = []
        self.slot_names: list[str] = []
        self.slot_of: dict[str, int] = {}
        self.consts: list[tuple] = []
        self._const_of: dict[Hashable, int] = {}
        self._block_of: dict[int, int] = {}
        self.entries: dict[AbsClo, tuple[int, int]] = {}

    @classmethod
    def extending(cls, plan: AnfPlan) -> "_AnfCompiler":
        """A compiler whose arrays continue an existing plan's, for
        per-run extension code (initial-store closure bodies).  The
        plan itself is never mutated."""
        comp = cls()
        comp.code = [list(instr) for instr in plan.code]
        comp.terms = list(plan.terms)
        comp.slot_names = list(plan.slot_names)
        comp.slot_of = dict(plan.slot_of)
        comp.consts = list(plan.consts)
        comp._const_of = {desc: i for i, desc in enumerate(plan.consts)}
        comp.entries = dict(plan.entries)
        return comp

    def slot(self, name: str) -> int:
        index = self.slot_of.get(name)
        if index is None:
            index = len(self.slot_names)
            self.slot_of[name] = index
            self.slot_names.append(name)
        return index

    def vref(self, value: Term) -> int:
        if isinstance(value, Var):
            return self.slot(value.name)
        if isinstance(value, Num):
            desc = ("num", value.value)
        elif isinstance(value, Prim):
            desc = ("prim", value.name)
        elif isinstance(value, Lam):
            desc = ("clo", value)
        else:
            raise TypeError(f"not a syntactic value: {value!r}")
        index = self._const_of.get(desc)
        if index is None:
            index = len(self.consts)
            self._const_of[desc] = index
            self.consts.append(desc)
        return encode_const(index)

    def closure_blocks(self, term: Term) -> None:
        """Compile an entry block for every lambda under ``term``."""
        for sub in subterms(term):
            if isinstance(sub, Lam):
                clo = AbsClo(sub.param, sub.body)
                if clo not in self.entries:
                    self.entries[clo] = (
                        self.slot(sub.param),
                        self.block(sub.body),
                    )

    def block(self, term: Term) -> int:
        """The entry pc of ``term``, compiling its let-spine (and,
        recursively, branch targets) on first encounter."""
        code = self.code
        entry: int | None = None
        patch: tuple[int, int] | None = None
        while True:
            pc = self._block_of.get(id(term))
            if pc is not None:
                if patch is not None:
                    code[patch[0]][patch[1]] = pc
                return entry if entry is not None else pc
            pc = len(code)
            self._block_of[id(term)] = pc
            if entry is None:
                entry = pc
            if patch is not None:
                code[patch[0]][patch[1]] = pc
                patch = None
            if is_value(term):
                code.append([OP_TAIL, self.vref(term)])
                self.terms.append(term)
                return entry
            if not isinstance(term, Let):
                raise TypeError(
                    f"term is not in the restricted subset: {term!r}"
                )
            name, rhs, body = term.name, term.rhs, term.body
            dst = self.slot(name)
            if is_value(rhs):
                code.append([OP_BIND, dst, self.vref(rhs), -1])
                self.terms.append(term)
                patch = (pc, 3)
            elif isinstance(rhs, App):
                code.append(
                    [OP_APP, dst, self.vref(rhs.fun), self.vref(rhs.arg), -1]
                )
                self.terms.append(term)
                patch = (pc, 4)
            elif isinstance(rhs, If0):
                instr = [OP_IF, dst, self.vref(rhs.test), -1, -1, -1]
                code.append(instr)
                self.terms.append(term)
                instr[3] = self.block(rhs.then)
                instr[4] = self.block(rhs.orelse)
                patch = (pc, 5)
            elif isinstance(rhs, PrimApp):
                code.append(
                    [
                        OP_PRIM,
                        dst,
                        rhs.op,
                        self.vref(rhs.args[0]),
                        self.vref(rhs.args[1]),
                        -1,
                    ]
                )
                self.terms.append(term)
                patch = (pc, 5)
            elif isinstance(rhs, Loop):
                code.append([OP_LOOP, dst, -1])
                self.terms.append(term)
                patch = (pc, 2)
            else:
                raise TypeError(f"invalid let right-hand side: {rhs!r}")
            term = body

    def finish(self, entry_pc: int, term: Term) -> AnfPlan:
        return AnfPlan(
            entry_pc,
            tuple(tuple(instr) for instr in self.code),
            tuple(self.terms),
            tuple(self.slot_names),
            dict(self.slot_of),
            tuple(self.consts),
            dict(self.entries),
            closures_of_term(term),
            frozenset(free_variables(term)),
        )

    def extension(self, bodies: "list[AbsClo]") -> "AnfExtension":
        """Compile the bodies of closures assumed in an initial store
        and package the extended arrays (plan arrays are shared, only
        the copies grow)."""
        for clo in bodies:
            if clo not in self.entries:
                self.entries[clo] = (
                    self.slot(clo.param),
                    self.block(clo.body),
                )
                self.closure_blocks(clo.body)
        return AnfExtension(
            tuple(tuple(instr) for instr in self.code),
            tuple(self.terms),
            tuple(self.slot_names),
            dict(self.slot_of),
            tuple(self.consts),
            dict(self.entries),
        )


class AnfExtension:
    """Per-run extended arrays: a plan plus initial-store closure code."""

    __slots__ = (
        "code", "terms", "slot_names", "slot_of", "consts", "entries"
    )

    def __init__(self, code, terms, slot_names, slot_of, consts, entries):
        self.code = code
        self.terms = terms
        self.slot_names = slot_names
        self.slot_of = slot_of
        self.consts = consts
        self.entries = entries


def compile_anf_plan(term: Term) -> AnfPlan:
    """Lower a restricted-subset program to a flat `AnfPlan`."""
    with recursion_headroom():
        comp = _AnfCompiler()
        entry_pc = comp.block(term)
        comp.closure_blocks(term)
        return comp.finish(entry_pc, term)


def extend_anf_plan(plan: AnfPlan, closures: "list[AbsClo]") -> AnfExtension:
    """Extend ``plan`` with compiled bodies for initial-store closures
    (those not already compiled as part of the program)."""
    with recursion_headroom():
        comp = _AnfCompiler.extending(plan)
        return comp.extension(closures)


# ----------------------------------------------------------------------
# Compiler for cps(A)
# ----------------------------------------------------------------------


class _CpsCompiler:
    """Lowers cps(A) terms to `CpsPlan` instruction arrays."""

    def __init__(self) -> None:
        self.code: list[list] = []
        self.terms: list[CTerm] = []
        self.slot_names: list[str] = []
        self.slot_of: dict[str, int] = {}
        self.consts: list[tuple] = []
        self._const_of: dict[Hashable, int] = {}
        self._block_of: dict[int, int] = {}
        self.cps_entries: dict[AbsCpsClo, tuple[int, int, int]] = {}
        self.kont_entries: dict[AbsCo, tuple[int, int]] = {}

    @classmethod
    def extending(cls, plan: CpsPlan) -> "_CpsCompiler":
        comp = cls()
        comp.code = [list(instr) for instr in plan.code]
        comp.terms = list(plan.terms)
        comp.slot_names = list(plan.slot_names)
        comp.slot_of = dict(plan.slot_of)
        comp.consts = list(plan.consts)
        comp._const_of = {desc: i for i, desc in enumerate(plan.consts)}
        comp.cps_entries = dict(plan.cps_entries)
        comp.kont_entries = dict(plan.kont_entries)
        return comp

    def slot(self, name: str) -> int:
        index = self.slot_of.get(name)
        if index is None:
            index = len(self.slot_names)
            self.slot_of[name] = index
            self.slot_names.append(name)
        return index

    def const(self, desc: tuple) -> int:
        index = self._const_of.get(desc)
        if index is None:
            index = len(self.consts)
            self._const_of[desc] = index
            self.consts.append(desc)
        return index

    def vref(self, value) -> int:
        if isinstance(value, CVar):
            return self.slot(value.name)
        if isinstance(value, CNum):
            desc = ("num", value.value)
        elif isinstance(value, CPrim):
            desc = ("cps_prim", value.name)
        elif isinstance(value, CLam):
            desc = ("cps_clo", value)
        else:
            raise TypeError(f"not a cps(A) value: {value!r}")
        return encode_const(self.const(desc))

    def kont(self, klam: KLam) -> int:
        """The constant index of a continuation value, registering its
        compiled entry point."""
        co = AbsCo(klam.param, klam.body)
        if co not in self.kont_entries:
            self.kont_entries[co] = (
                self.slot(klam.param),
                self.block(klam.body),
            )
        return self.const(("konts", klam))

    def closure_blocks(self, term: CTerm) -> None:
        """Compile an entry block for every user lambda under ``term``
        (continuation lambdas are handled at their use sites)."""
        for sub in cps_subterms(term):
            if isinstance(sub, CLam):
                clo = AbsCpsClo(sub.param, sub.kparam, sub.body)
                if clo not in self.cps_entries:
                    self.cps_entries[clo] = (
                        self.slot(sub.param),
                        self.slot(sub.kparam),
                        self.block(sub.body),
                    )

    def block(self, term: CTerm) -> int:
        code = self.code
        entry: int | None = None
        patch: tuple[int, int] | None = None
        while True:
            pc = self._block_of.get(id(term))
            if pc is not None:
                if patch is not None:
                    code[patch[0]][patch[1]] = pc
                return entry if entry is not None else pc
            pc = len(code)
            self._block_of[id(term)] = pc
            if entry is None:
                entry = pc
            if patch is not None:
                code[patch[0]][patch[1]] = pc
                patch = None
            if isinstance(term, KApp):
                code.append(
                    [COP_KRET, self.slot(term.kvar), self.vref(term.value)]
                )
                self.terms.append(term)
                return entry
            if isinstance(term, CLet):
                code.append(
                    [
                        COP_BIND,
                        self.slot(term.name),
                        self.vref(term.value),
                        -1,
                    ]
                )
                self.terms.append(term)
                patch = (pc, 3)
                term = term.body
            elif isinstance(term, CApp):
                instr = [
                    COP_CAPP, self.vref(term.fun), self.vref(term.arg), -1
                ]
                code.append(instr)
                self.terms.append(term)
                instr[3] = self.kont(term.kont)
                return entry
            elif isinstance(term, CIf0):
                instr = [
                    COP_CIF,
                    self.slot(term.kvar),
                    -1,
                    self.vref(term.test),
                    -1,
                    -1,
                ]
                code.append(instr)
                self.terms.append(term)
                instr[2] = self.kont(term.kont)
                instr[4] = self.block(term.then)
                instr[5] = self.block(term.orelse)
                return entry
            elif isinstance(term, CPrimLet):
                code.append(
                    [
                        COP_PRIM,
                        self.slot(term.name),
                        term.op,
                        self.vref(term.args[0]),
                        self.vref(term.args[1]),
                        -1,
                    ]
                )
                self.terms.append(term)
                patch = (pc, 5)
                term = term.body
            elif isinstance(term, CLoop):
                instr = [COP_CLOOP, -1]
                code.append(instr)
                self.terms.append(term)
                instr[1] = self.kont(term.kont)
                return entry
            else:
                raise TypeError(f"not a cps(A) term: {term!r}")

    def finish(self, entry_pc: int, term: CTerm) -> CpsPlan:
        return CpsPlan(
            entry_pc,
            tuple(tuple(instr) for instr in self.code),
            tuple(self.terms),
            tuple(self.slot_names),
            dict(self.slot_of),
            tuple(self.consts),
            dict(self.cps_entries),
            dict(self.kont_entries),
            cps_closures_of_term(term),
            konts_of_term(term),
        )

    def extension(
        self,
        closures: "list[AbsCpsClo]",
        konts: "list[AbsCo]",
    ) -> "CpsExtension":
        for clo in closures:
            if clo not in self.cps_entries:
                self.cps_entries[clo] = (
                    self.slot(clo.param),
                    self.slot(clo.kparam),
                    self.block(clo.body),
                )
                self.closure_blocks(clo.body)
        for co in konts:
            if co not in self.kont_entries:
                self.kont_entries[co] = (
                    self.slot(co.param),
                    self.block(co.body),
                )
                self.closure_blocks(co.body)
        return CpsExtension(
            tuple(tuple(instr) for instr in self.code),
            tuple(self.terms),
            tuple(self.slot_names),
            dict(self.slot_of),
            tuple(self.consts),
            dict(self.cps_entries),
            dict(self.kont_entries),
        )


class CpsExtension:
    """Per-run extended arrays for a `CpsPlan`."""

    __slots__ = (
        "code",
        "terms",
        "slot_names",
        "slot_of",
        "consts",
        "cps_entries",
        "kont_entries",
    )

    def __init__(
        self, code, terms, slot_names, slot_of, consts, cps_entries,
        kont_entries,
    ):
        self.code = code
        self.terms = terms
        self.slot_names = slot_names
        self.slot_of = slot_of
        self.consts = consts
        self.cps_entries = cps_entries
        self.kont_entries = kont_entries


def compile_cps_plan(term: CTerm) -> CpsPlan:
    """Lower a cps(A) program to a flat `CpsPlan`."""
    with recursion_headroom():
        comp = _CpsCompiler()
        entry_pc = comp.block(term)
        comp.closure_blocks(term)
        return comp.finish(entry_pc, term)


def extend_cps_plan(
    plan: CpsPlan,
    closures: "list[AbsCpsClo]",
    konts: "list[AbsCo]",
) -> CpsExtension:
    """Extend ``plan`` with compiled bodies for initial-store closures
    and continuations."""
    with recursion_headroom():
        comp = _CpsCompiler.extending(plan)
        return comp.extension(closures, konts)


# ----------------------------------------------------------------------
# The cross-run plan cache
# ----------------------------------------------------------------------


class PlanCache:
    """An LRU cache of compiled plans, keyed by structural term
    equality (the canonical hash of frozen AST nodes).

    Thread-safe: the serve layer's worker pool shares the process-wide
    :data:`PLAN_CACHE`, so repeated requests for the same program skip
    compilation entirely.  Plans are immutable and domain-independent,
    so sharing across domains and concurrent runs is sound.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._plans: "OrderedDict[tuple, object]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _get(self, key: tuple, compile_fn):
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self.hits += 1
                return plan
            self.misses += 1
        # A trace-context span (no-op outside an active request trace)
        # so `server_timing` can attribute the one-time compile cost.
        from repro.obs.trace import span as trace_span

        with trace_span("plan.compile", kind=key[0]):
            plan = compile_fn(key[1])
        with self._lock:
            existing = self._plans.get(key)
            if existing is not None:
                return existing
            self._plans[key] = plan
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
                self.evictions += 1
        return plan

    def anf_plan(self, term: Term) -> AnfPlan:
        """The cached (or freshly compiled) plan for ``term``."""
        return self._get(("anf", term), compile_anf_plan)

    def cps_plan(self, term: CTerm) -> CpsPlan:
        """The cached (or freshly compiled) plan for the cps(A)
        program ``term``."""
        return self._get(("cps", term), compile_cps_plan)

    def clear(self) -> None:
        """Drop every cached plan (counters are kept)."""
        with self._lock:
            self._plans.clear()

    def snapshot(self) -> dict:
        """Counters for ``/metricsz`` and test assertions."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._plans),
                "capacity": self.capacity,
            }


#: The process-wide plan cache shared by serve, survey, lint and bench.
PLAN_CACHE = PlanCache()
