"""Abstract syntax of the source language A (paper Section 2).

The grammar of the full language is::

    M ::= V | (M M) | (let (x M) M) | (if0 M M M)
        | (op M ... M)            -- second-class primitive application
        | (loop)                  -- Section 6.2 looping construct
    V ::= n | x | add1 | sub1 | (lambda (x) M)

``add1`` and ``sub1`` are *first-class* primitive procedures exactly as
in the paper (they may flow into higher-order positions and appear in
abstract closure sets as the ``inc``/``dec`` tags).  The n-ary operators
``+``, ``-`` and ``*`` are *second-class*: they only occur fully
applied.  The paper uses ``(+ a1 3)`` in the witness program of
Theorem 5.2 as an "obvious abbreviation"; `PrimApp` is the direct
rendering of that abbreviation.  ``loop`` is the paper's Section 6.2
construct whose exact collecting semantics is the infinite set
``{0, 1, 2, ...}``.

All node classes are immutable (frozen dataclasses) and hashable, so
that—after the unique-binder renaming pass—structural equality
identifies program points, which is how the paper uses bound variables
as labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

#: Names of the first-class unary primitives.
FIRST_CLASS_PRIMS = ("add1", "sub1")

#: Names of the second-class n-ary operators and their arities.
SECOND_CLASS_OPS = {"+": 2, "-": 2, "*": 2}


@dataclass(frozen=True, slots=True)
class Num:
    """A numeral ``n``."""

    value: int

    def __post_init__(self) -> None:
        if not isinstance(self.value, int) or isinstance(self.value, bool):
            raise TypeError(f"Num requires an int, got {self.value!r}")

    def __str__(self) -> str:  # pragma: no cover - convenience
        return str(self.value)


@dataclass(frozen=True, slots=True)
class Var:
    """A variable reference ``x``."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.name


@dataclass(frozen=True, slots=True)
class Prim:
    """A first-class primitive procedure: ``add1`` or ``sub1``."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in FIRST_CLASS_PRIMS:
            raise ValueError(
                f"unknown primitive {self.name!r}; expected one of {FIRST_CLASS_PRIMS}"
            )

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.name


@dataclass(frozen=True, slots=True)
class Lam:
    """A user-defined procedure ``(lambda (x) M)``."""

    param: str
    body: "Term"

    def __post_init__(self) -> None:
        if not self.param:
            raise ValueError("lambda parameter must be non-empty")


@dataclass(frozen=True, slots=True)
class App:
    """A procedure application ``(M M)``."""

    fun: "Term"
    arg: "Term"


@dataclass(frozen=True, slots=True)
class Let:
    """A let expression ``(let (x M) M)``."""

    name: str
    rhs: "Term"
    body: "Term"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("let-bound name must be non-empty")


@dataclass(frozen=True, slots=True)
class If0:
    """A conditional ``(if0 M M M)``.

    Branches to ``then`` when the test evaluates to ``0`` and to
    ``orelse`` otherwise (any non-zero number or a procedure).
    """

    test: "Term"
    then: "Term"
    orelse: "Term"


@dataclass(frozen=True, slots=True)
class PrimApp:
    """A fully-applied second-class operator ``(op M ... M)``.

    Only the binary arithmetic operators ``+``, ``-``, ``*`` exist; the
    node stores an argument tuple so the arity lives in one place.
    """

    op: str
    args: tuple["Term", ...]

    def __post_init__(self) -> None:
        arity = SECOND_CLASS_OPS.get(self.op)
        if arity is None:
            raise ValueError(
                f"unknown operator {self.op!r}; expected one of {sorted(SECOND_CLASS_OPS)}"
            )
        if len(self.args) != arity:
            raise ValueError(
                f"operator {self.op!r} takes {arity} arguments, got {len(self.args)}"
            )


@dataclass(frozen=True, slots=True)
class Loop:
    """The Section 6.2 looping construct ``(loop)``.

    Concretely it diverges (it abbreviates ``x := 0; while true x := x+1``);
    its exact collecting semantics is the infinite set ``{0, 1, 2, ...}``.
    """


#: Syntactic values of A.
Value = Union[Num, Var, Prim, Lam]

#: All terms of A.
Term = Union[Num, Var, Prim, Lam, App, Let, If0, PrimApp, Loop]

#: Classes in `Value`, for isinstance checks.
VALUE_CLASSES = (Num, Var, Prim, Lam)

#: Classes in `Term`, for isinstance checks.
TERM_CLASSES = (Num, Var, Prim, Lam, App, Let, If0, PrimApp, Loop)


def is_value(term: Term) -> bool:
    """Return True when ``term`` is a syntactic value of A."""
    return isinstance(term, VALUE_CLASSES)
