"""Convenience constructors for building A terms in Python code.

The tests, benchmarks and corpus build many terms; these helpers keep
those sites short and accept bare ints/strs where unambiguous::

    from repro.lang import builder as b
    term = b.let("x", b.num(1), b.app("f", "x"))
"""

from __future__ import annotations

from repro.lang.ast import (
    App,
    If0,
    Lam,
    Let,
    Loop,
    Num,
    Prim,
    PrimApp,
    Term,
    Var,
)


def coerce(value: Term | int | str) -> Term:
    """Turn a bare int into a `Num` and a bare str into a `Var`."""
    if isinstance(value, int) and not isinstance(value, bool):
        return Num(value)
    if isinstance(value, str):
        return Var(value)
    return value


def num(value: int) -> Num:
    """Build a numeral."""
    return Num(value)


def var(name: str) -> Var:
    """Build a variable reference."""
    return Var(name)


def add1() -> Prim:
    """The first-class increment primitive."""
    return Prim("add1")


def sub1() -> Prim:
    """The first-class decrement primitive."""
    return Prim("sub1")


def lam(param: str, body: Term | int | str) -> Lam:
    """Build ``(lambda (param) body)``."""
    return Lam(param, coerce(body))


def app(fun: Term | int | str, arg: Term | int | str) -> App:
    """Build an application ``(fun arg)``."""
    return App(coerce(fun), coerce(arg))


def let(name: str, rhs: Term | int | str, body: Term | int | str) -> Let:
    """Build ``(let (name rhs) body)``."""
    return Let(name, coerce(rhs), coerce(body))


def if0(
    test: Term | int | str, then: Term | int | str, orelse: Term | int | str
) -> If0:
    """Build ``(if0 test then orelse)``."""
    return If0(coerce(test), coerce(then), coerce(orelse))


def prim_app(op: str, *args: Term | int | str) -> PrimApp:
    """Build a second-class operator application ``(op args...)``."""
    return PrimApp(op, tuple(coerce(a) for a in args))


def add(left: Term | int | str, right: Term | int | str) -> PrimApp:
    """Build ``(+ left right)``."""
    return prim_app("+", left, right)


def sub(left: Term | int | str, right: Term | int | str) -> PrimApp:
    """Build ``(- left right)``."""
    return prim_app("-", left, right)


def mul(left: Term | int | str, right: Term | int | str) -> PrimApp:
    """Build ``(* left right)``."""
    return prim_app("*", left, right)


def loop() -> Loop:
    """Build the Section 6.2 ``(loop)`` construct."""
    return Loop()
