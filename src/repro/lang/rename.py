"""Binder hygiene: fresh-name supplies and the uniquify pass.

The paper's restricted subset requires "all bound variables in a
program are unique".  :func:`uniquify` alpha-renames an arbitrary term
to establish that invariant; every downstream pass (A-normalization,
CPS transformation, the analyzers) relies on it.
"""

from __future__ import annotations

from typing import Iterable

from repro.lang.ast import (
    App,
    If0,
    Lam,
    Let,
    Loop,
    Num,
    Prim,
    PrimApp,
    Term,
    Var,
)
from repro.lang.syntax import free_variables


class NameSupply:
    """A supply of names guaranteed fresh with respect to a used set.

    Fresh names are derived from a base name with a ``%N`` suffix, a
    character sequence the pretty-printer round-trips and users are
    unlikely to write.
    """

    def __init__(self, used: Iterable[str] = ()) -> None:
        self._used = set(used)
        self._counters: dict[str, int] = {}

    def reserve(self, name: str) -> None:
        """Mark ``name`` as used without generating anything."""
        self._used.add(name)

    def fresh(self, base: str) -> str:
        """Return a name not seen before, preferring ``base`` itself."""
        root = base.split("%", 1)[0] or "x"
        if base not in self._used:
            self._used.add(base)
            return base
        counter = self._counters.get(root, 0)
        while True:
            counter += 1
            candidate = f"{root}%{counter}"
            if candidate not in self._used:
                self._counters[root] = counter
                self._used.add(candidate)
                return candidate


def fresh_name_supply(*terms: Term) -> NameSupply:
    """Create a `NameSupply` that avoids every name occurring in ``terms``."""
    used: set[str] = set()
    for term in terms:
        used.update(_all_names(term))
    return NameSupply(used)


def _all_names(term: Term) -> set[str]:
    from repro.lang.syntax import subterms

    names: set[str] = set()
    for sub in subterms(term):
        match sub:
            case Var(name):
                names.add(name)
            case Lam(param, _):
                names.add(param)
            case Let(name, _, _):
                names.add(name)
            case _:
                pass
    return names


def uniquify(term: Term, supply: NameSupply | None = None) -> Term:
    """Alpha-rename ``term`` so all binders bind distinct names.

    Free variables are left untouched (and reserved, so no binder
    captures them).  The result satisfies
    :func:`repro.lang.syntax.has_unique_binders`.
    """
    if supply is None:
        supply = NameSupply()
        for name in free_variables(term):
            supply.reserve(name)
    return _rename(term, {}, supply)


def _rename(term: Term, env: dict[str, str], supply: NameSupply) -> Term:
    match term:
        case Num() | Prim() | Loop():
            return term
        case Var(name):
            return Var(env.get(name, name))
        case Lam(param, body):
            fresh = supply.fresh(param)
            return Lam(fresh, _rename(body, {**env, param: fresh}, supply))
        case App(fun, arg):
            return App(_rename(fun, env, supply), _rename(arg, env, supply))
        case Let(name, rhs, body):
            new_rhs = _rename(rhs, env, supply)
            fresh = supply.fresh(name)
            return Let(fresh, new_rhs, _rename(body, {**env, name: fresh}, supply))
        case If0(test, then, orelse):
            return If0(
                _rename(test, env, supply),
                _rename(then, env, supply),
                _rename(orelse, env, supply),
            )
        case PrimApp(op, args):
            return PrimApp(op, tuple(_rename(a, env, supply) for a in args))
    raise TypeError(f"not an A term: {term!r}")
