"""Exception hierarchy for the source language A.

Structural validators (:mod:`repro.anf.validate`,
:mod:`repro.cps.validate`) report problems as `Violation` records — a
stable rule key, a message, and the binder/variable the problem is
about — which the `repro.lint` passes turn into recoverable
diagnostics with source spans.  The raising APIs stay: they throw a
`SyntaxValidationError` carrying the first violation's rule and
subject, so existing callers keep their exception semantics while the
error is no longer a bare string.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Violation:
    """One recoverable structural problem found by a validator.

    Attributes:
        rule: a stable validator rule key (e.g. ``"non-unique-binders"``,
            ``"not-in-cps"``); the lint layer maps these to `S1xx`
            diagnostic codes.
        message: human-readable description.
        subject: the binder or variable name the problem concerns, when
            there is one — the lint layer resolves it to a source span.
    """

    rule: str
    message: str
    subject: str | None = None


class LangError(Exception):
    """Base class for all errors raised by :mod:`repro.lang`."""


class ParseError(LangError):
    """Raised when concrete syntax cannot be parsed into a term.

    Attributes:
        message: human-readable description of the problem.
        line: 1-based line of the offending token (0 if unknown).
        column: 1-based column of the offending token (0 if unknown).
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.message = message
        self.line = line
        self.column = column
        location = f" at {line}:{column}" if line else ""
        super().__init__(f"{message}{location}")


class SyntaxValidationError(LangError):
    """Raised when a term violates a structural invariant.

    Used by the ANF validator, the cps(A) validator, and the
    unique-binder checks that the abstract interpreters require.

    Attributes:
        rule: the validator rule key that failed (empty for legacy
            call sites that raise with a bare message).
        subject: the offending binder/variable name, if known.
    """

    def __init__(
        self,
        message: str,
        rule: str = "",
        subject: str | None = None,
    ) -> None:
        self.rule = rule
        self.subject = subject
        super().__init__(message)

    @classmethod
    def from_violation(cls, violation: Violation) -> "SyntaxValidationError":
        """Wrap the first violation of a validator run."""
        return cls(
            violation.message,
            rule=violation.rule,
            subject=violation.subject,
        )


class ScopeError(LangError):
    """Raised when a term references a variable that is not in scope."""
