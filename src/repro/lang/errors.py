"""Exception hierarchy for the source language A."""

from __future__ import annotations


class LangError(Exception):
    """Base class for all errors raised by :mod:`repro.lang`."""


class ParseError(LangError):
    """Raised when concrete syntax cannot be parsed into a term.

    Attributes:
        message: human-readable description of the problem.
        line: 1-based line of the offending token (0 if unknown).
        column: 1-based column of the offending token (0 if unknown).
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.message = message
        self.line = line
        self.column = column
        location = f" at {line}:{column}" if line else ""
        super().__init__(f"{message}{location}")


class SyntaxValidationError(LangError):
    """Raised when a term violates a structural invariant.

    Used by the ANF validator, the cps(A) validator, and the
    unique-binder checks that the abstract interpreters require.
    """


class ScopeError(LangError):
    """Raised when a term references a variable that is not in scope."""
