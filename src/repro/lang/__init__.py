"""The source language A.

This package defines the higher-order applicative core language of
Sabry & Felleisen (PLDI 1994, Section 2): the abstract syntax, an
s-expression concrete syntax (parser and pretty-printer), binder
hygiene (the "all bound variables are unique" invariant that the
paper's analyzers rely on), and structural utilities.
"""

from repro.lang.ast import (
    App,
    If0,
    Lam,
    Let,
    Loop,
    Num,
    Prim,
    PrimApp,
    Term,
    Value,
    Var,
    is_value,
)
from repro.lang.builder import (
    add,
    add1,
    app,
    if0,
    lam,
    let,
    loop,
    mul,
    num,
    prim_app,
    sub,
    sub1,
    var,
)
from repro.lang.errors import LangError, ParseError, ScopeError, SyntaxValidationError
from repro.lang.parser import parse, parse_program
from repro.lang.pretty import pretty
from repro.lang.rename import fresh_name_supply, uniquify
from repro.lang.syntax import (
    binders,
    bound_variables,
    free_variables,
    has_unique_binders,
    subterms,
    term_size,
)

__all__ = [
    "App",
    "If0",
    "Lam",
    "Let",
    "Loop",
    "Num",
    "Prim",
    "PrimApp",
    "Term",
    "Value",
    "Var",
    "is_value",
    "LangError",
    "ParseError",
    "ScopeError",
    "SyntaxValidationError",
    "parse",
    "parse_program",
    "pretty",
    "uniquify",
    "fresh_name_supply",
    "binders",
    "bound_variables",
    "free_variables",
    "has_unique_binders",
    "subterms",
    "term_size",
    "add",
    "add1",
    "app",
    "if0",
    "lam",
    "let",
    "loop",
    "mul",
    "num",
    "prim_app",
    "sub",
    "sub1",
    "var",
]
