"""An s-expression parser for the source language A.

Concrete syntax (comments start with ``;`` and run to end of line)::

    M ::= n | x | add1 | sub1
        | (lambda (x) M)
        | (M M)
        | (let (x M) M)
        | (if0 M M M)
        | (+ M M) | (- M M) | (* M M)
        | (loop)

The parser is split into a tokenizer, a reader producing nested lists
of atoms (an *s-expression datum*), and a translation of datums into
:mod:`repro.lang.ast` terms.  Positions are tracked through all three
stages so parse errors point at the offending token.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from repro.lang.ast import (
    App,
    If0,
    Lam,
    Let,
    Loop,
    Num,
    Prim,
    PrimApp,
    Term,
    Var,
    FIRST_CLASS_PRIMS,
    SECOND_CLASS_OPS,
)
from repro.lang.errors import ParseError

#: Words that cannot be used as variable names.
RESERVED_WORDS = frozenset(
    {"lambda", "let", "if0", "loop", "add1", "sub1"} | set(SECOND_CLASS_OPS)
)


@dataclass(frozen=True, slots=True)
class Token:
    """A lexical token with its source position (1-based)."""

    text: str
    line: int
    column: int


@dataclass(frozen=True, slots=True)
class Atom:
    """A leaf s-expression datum: a number or a symbol."""

    text: str
    line: int
    column: int


@dataclass(frozen=True, slots=True)
class SList:
    """A parenthesized s-expression datum."""

    items: tuple["Datum", ...]
    line: int
    column: int


Datum = Union[Atom, SList]

_DELIMITERS = "()"
_WHITESPACE = " \t\r\n"


def tokenize(source: str) -> Iterator[Token]:
    """Yield the tokens of ``source``, skipping whitespace and comments."""
    line, column = 1, 1
    index = 0
    length = len(source)
    while index < length:
        char = source[index]
        if char == "\n":
            index += 1
            line += 1
            column = 1
        elif char in _WHITESPACE:
            index += 1
            column += 1
        elif char == ";":
            while index < length and source[index] != "\n":
                index += 1
        elif char in _DELIMITERS:
            yield Token(char, line, column)
            index += 1
            column += 1
        else:
            start = index
            start_column = column
            while (
                index < length
                and source[index] not in _WHITESPACE
                and source[index] not in _DELIMITERS
                and source[index] != ";"
            ):
                index += 1
                column += 1
            yield Token(source[start:index], line, start_column)


def _read_datum(tokens: list[Token], position: int) -> tuple[Datum, int]:
    """Read one datum starting at ``tokens[position]``."""
    if position >= len(tokens):
        raise ParseError("unexpected end of input")
    token = tokens[position]
    if token.text == "(":
        items: list[Datum] = []
        cursor = position + 1
        while True:
            if cursor >= len(tokens):
                raise ParseError(
                    "unclosed parenthesis", token.line, token.column
                )
            if tokens[cursor].text == ")":
                return SList(tuple(items), token.line, token.column), cursor + 1
            datum, cursor = _read_datum(tokens, cursor)
            items.append(datum)
    if token.text == ")":
        raise ParseError("unexpected ')'", token.line, token.column)
    return Atom(token.text, token.line, token.column), position + 1


def read(source: str) -> Datum:
    """Read exactly one s-expression datum from ``source``."""
    tokens = list(tokenize(source))
    if not tokens:
        raise ParseError("empty input")
    datum, position = _read_datum(tokens, 0)
    if position != len(tokens):
        trailing = tokens[position]
        raise ParseError(
            f"trailing input {trailing.text!r}", trailing.line, trailing.column
        )
    return datum


def _is_number(text: str) -> bool:
    body = text[1:] if text[:1] in "+-" else text
    return body.isdigit() and bool(body)


def _parse_name(datum: Datum, role: str) -> str:
    if not isinstance(datum, Atom):
        raise ParseError(f"expected a {role} name", datum.line, datum.column)
    if _is_number(datum.text):
        raise ParseError(
            f"expected a {role} name, got number {datum.text}",
            datum.line,
            datum.column,
        )
    if datum.text in RESERVED_WORDS:
        raise ParseError(
            f"reserved word {datum.text!r} cannot be a {role} name",
            datum.line,
            datum.column,
        )
    return datum.text


def _expect_items(datum: SList, count: int, form: str) -> tuple[Datum, ...]:
    if len(datum.items) != count:
        raise ParseError(
            f"{form} takes {count - 1} operands, got {len(datum.items) - 1}",
            datum.line,
            datum.column,
        )
    return datum.items


def _parse_datum(datum: Datum) -> Term:
    if isinstance(datum, Atom):
        return _parse_atom(datum)
    if not datum.items:
        raise ParseError("empty application ()", datum.line, datum.column)
    head = datum.items[0]
    if isinstance(head, Atom):
        keyword = head.text
        if keyword == "lambda":
            return _parse_lambda(datum)
        if keyword == "let":
            return _parse_let(datum)
        if keyword == "if0":
            items = _expect_items(datum, 4, "if0")
            return If0(
                _parse_datum(items[1]),
                _parse_datum(items[2]),
                _parse_datum(items[3]),
            )
        if keyword == "loop":
            _expect_items(datum, 1, "loop")
            return Loop()
        if keyword in SECOND_CLASS_OPS:
            arity = SECOND_CLASS_OPS[keyword]
            items = _expect_items(datum, arity + 1, keyword)
            return PrimApp(keyword, tuple(_parse_datum(d) for d in items[1:]))
    if len(datum.items) != 2:
        raise ParseError(
            f"application takes 1 operand, got {len(datum.items) - 1}",
            datum.line,
            datum.column,
        )
    return App(_parse_datum(datum.items[0]), _parse_datum(datum.items[1]))


def _parse_atom(atom: Atom) -> Term:
    if _is_number(atom.text):
        return Num(int(atom.text))
    if atom.text in FIRST_CLASS_PRIMS:
        return Prim(atom.text)
    if atom.text in RESERVED_WORDS:
        raise ParseError(
            f"reserved word {atom.text!r} is not a term", atom.line, atom.column
        )
    return Var(atom.text)


def _parse_lambda(datum: SList) -> Lam:
    items = _expect_items(datum, 3, "lambda")
    params = items[1]
    if not isinstance(params, SList) or len(params.items) != 1:
        raise ParseError(
            "lambda takes a single-parameter list, e.g. (lambda (x) M)",
            datum.line,
            datum.column,
        )
    name = _parse_name(params.items[0], "parameter")
    return Lam(name, _parse_datum(items[2]))


def _parse_let(datum: SList) -> Let:
    items = _expect_items(datum, 3, "let")
    binding = items[1]
    if not isinstance(binding, SList) or len(binding.items) != 2:
        raise ParseError(
            "let takes a binding pair, e.g. (let (x M) M)",
            datum.line,
            datum.column,
        )
    name = _parse_name(binding.items[0], "let-bound")
    return Let(name, _parse_datum(binding.items[1]), _parse_datum(items[2]))


def parse(source: str) -> Term:
    """Parse a single A term from concrete syntax.

    >>> parse("(let (x 1) (add1 x))")
    Let(name='x', rhs=Num(value=1), body=App(fun=Prim(name='add1'), arg=Var(name='x')))
    """
    return _parse_datum(read(source))


def parse_program(source: str) -> Term:
    """Parse a program: one term, with surrounding comments allowed.

    Provided as a named entry point for symmetry with other frontends;
    currently a program is a single term.
    """
    return parse(source)
