"""Structural utilities over A terms.

Free/bound variable computation, binder collection, the unique-binder
invariant check that the paper's analyses presuppose, subterm
iteration, and term size.
"""

from __future__ import annotations

from typing import Iterator

from repro.lang.ast import (
    App,
    If0,
    Lam,
    Let,
    Loop,
    Num,
    Prim,
    PrimApp,
    Term,
    Var,
)
from repro.lang.errors import ScopeError


def subterms(term: Term) -> Iterator[Term]:
    """Yield ``term`` and all of its subterms, pre-order."""
    stack = [term]
    while stack:
        current = stack.pop()
        yield current
        match current:
            case Lam(_, body):
                stack.append(body)
            case App(fun, arg):
                stack.extend((arg, fun))
            case Let(_, rhs, body):
                stack.extend((body, rhs))
            case If0(test, then, orelse):
                stack.extend((orelse, then, test))
            case PrimApp(_, args):
                stack.extend(reversed(args))
            case _:
                pass


def term_size(term: Term) -> int:
    """Return the number of AST nodes in ``term``."""
    return sum(1 for _ in subterms(term))


def free_variables(term: Term) -> frozenset[str]:
    """Return the set of free variable names of ``term``."""
    match term:
        case Num() | Prim() | Loop():
            return frozenset()
        case Var(name):
            return frozenset((name,))
        case Lam(param, body):
            return free_variables(body) - {param}
        case App(fun, arg):
            return free_variables(fun) | free_variables(arg)
        case Let(name, rhs, body):
            return free_variables(rhs) | (free_variables(body) - {name})
        case If0(test, then, orelse):
            return (
                free_variables(test)
                | free_variables(then)
                | free_variables(orelse)
            )
        case PrimApp(_, args):
            names: frozenset[str] = frozenset()
            for arg in args:
                names |= free_variables(arg)
            return names
    raise TypeError(f"not an A term: {term!r}")


def binders(term: Term) -> list[str]:
    """Return every binder occurrence (lambda params and let names), in
    pre-order, with duplicates preserved."""
    found: list[str] = []
    for sub in subterms(term):
        match sub:
            case Lam(param, _):
                found.append(param)
            case Let(name, _, _):
                found.append(name)
            case _:
                pass
    return found


def bound_variables(term: Term) -> frozenset[str]:
    """Return the set of names bound anywhere in ``term``."""
    return frozenset(binders(term))


def has_unique_binders(term: Term) -> bool:
    """True when every binder in ``term`` binds a distinct name and no
    binder shadows a free variable.

    This is the paper's standing assumption ("all bound variables in a
    program are unique"); the analyzers rely on it to use variables as
    abstract locations.
    """
    names = binders(term)
    if len(names) != len(set(names)):
        return False
    return not (set(names) & free_variables(term))


def check_closed(term: Term, allowed: frozenset[str] = frozenset()) -> None:
    """Raise `ScopeError` unless all free variables are in ``allowed``."""
    extra = free_variables(term) - allowed
    if extra:
        raise ScopeError(f"unbound variables: {sorted(extra)}")
