"""Pretty-printer for A terms.

Produces concrete syntax that :func:`repro.lang.parser.parse` reads
back to a structurally equal term (a round-trip property the test
suite checks).  Output is either flat or indented, depending on the
``width`` budget.
"""

from __future__ import annotations

from repro.lang.ast import (
    App,
    If0,
    Lam,
    Let,
    Loop,
    Num,
    Prim,
    PrimApp,
    Term,
    Var,
)


def pretty(term: Term, width: int = 72) -> str:
    """Render ``term`` as concrete syntax, wrapping at ``width`` columns."""
    return _render(term, 0, width)


def pretty_flat(term: Term) -> str:
    """Render ``term`` on a single line."""
    return _flat(term)


def _flat(term: Term) -> str:
    match term:
        case Num(value):
            return str(value)
        case Var(name):
            return name
        case Prim(name):
            return name
        case Lam(param, body):
            return f"(lambda ({param}) {_flat(body)})"
        case App(fun, arg):
            return f"({_flat(fun)} {_flat(arg)})"
        case Let(name, rhs, body):
            return f"(let ({name} {_flat(rhs)}) {_flat(body)})"
        case If0(test, then, orelse):
            return f"(if0 {_flat(test)} {_flat(then)} {_flat(orelse)})"
        case PrimApp(op, args):
            rendered = " ".join(_flat(a) for a in args)
            return f"({op} {rendered})"
        case Loop():
            return "(loop)"
    raise TypeError(f"not an A term: {term!r}")


def _render(term: Term, indent: int, width: int) -> str:
    flat = _flat(term)
    if indent + len(flat) <= width:
        return flat
    pad = " " * (indent + 2)
    match term:
        case Lam(param, body):
            inner = _render(body, indent + 2, width)
            return f"(lambda ({param})\n{pad}{inner})"
        case App(fun, arg):
            fun_s = _render(fun, indent + 2, width)
            arg_s = _render(arg, indent + 2, width)
            return f"({fun_s}\n{pad}{arg_s})"
        case Let(name, rhs, body):
            rhs_s = _render(rhs, indent + len(name) + 8, width)
            body_s = _render(body, indent + 2, width)
            return f"(let ({name} {rhs_s})\n{pad}{body_s})"
        case If0(test, then, orelse):
            test_s = _render(test, indent + 6, width)
            then_s = _render(then, indent + 2, width)
            else_s = _render(orelse, indent + 2, width)
            return f"(if0 {test_s}\n{pad}{then_s}\n{pad}{else_s})"
        case PrimApp(op, args):
            parts = "\n".join(pad + _render(a, indent + 2, width) for a in args)
            return f"({op}\n{parts})"
        case _:
            return flat
