"""The persistent, warm-once process worker pool.

The old batch layer paid for its parallelism twice per call:
``multiprocessing.Pool`` spawned fresh interpreters for every batch,
and each fresh worker re-imported the analyzers, re-parsed the corpus,
and re-compiled every plan it touched — on the benchmarked populations
that overhead exceeded the work itself (``survey --jobs 4`` *slower*
than serial).  This module replaces spawn-per-batch with processes
that live for the whole run and are initialized exactly once:

- **Warm-once initialization.**  `warm_analysis_caches` imports the
  analyzer stack, touches the parsed corpus, and precompiles the
  ANF and CPS plans of every non-heavy corpus program into the global
  `PLAN_CACHE` (interning the constant `AbsVal` tables as a side
  effect).  On POSIX the pool warms the *parent* first and forks, so
  children inherit every cache copy-on-write for free; under a spawn
  start method each worker runs the same initializer once at boot.
- **Chunked distribution over long-lived workers.**  `map` splits the
  items into chunks and the *parent* assigns them, one outstanding
  chunk per worker over a private duplex pipe; results stream back as
  ``(chunk_id, rows)`` records.  The parent reassembles them **in
  chunk order**, so a parallel map is order-identical to
  ``[fn(x) for x in items]`` and parallel survey folds stay
  bit-identical to serial ones (test-enforced).
- **Crash recovery.**  Per-worker pipes make a SIGKILL safe: a dying
  worker (OOM-killed, segfaulted, kill -9) is an immediate EOF on its
  own pipe — there is no shared queue lock to die holding and no
  in-flight claim message to lose — and the parent knows exactly
  which chunk it was assigned.  The chunk is redispatched to a fresh
  warmed worker a bounded number of times, after which
  `WorkerCrashed` surfaces the failure instead of looping.
- **Graceful shutdown.**  `shutdown` sends one sentinel per worker,
  joins them, and terminates stragglers; `shutdown_pools` runs at
  interpreter exit so CLI runs never leak processes.  Orphaned
  workers (parent SIGKILLed) notice their re-parenting and exit on
  their own.

`repro.perf.batch.parallel_map` — and through it ``survey --jobs`` /
``report --jobs`` — runs on this pool; `repro.serve.shard` builds the
multi-process service on the same warmed-fork substrate.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import multiprocessing.connection
import os
import pickle
import threading
import time
from typing import Any, Callable, Iterable, Sequence, TypeVar

_In = TypeVar("_In")
_Out = TypeVar("_Out")

#: How many times one chunk may be requeued after worker deaths before
#: the map gives up.  Two redispatches tolerate an unlucky respawn
#: landing on another dying worker without masking a deterministic
#: crasher (which would kill every worker it touches).
MAX_CHUNK_RETRIES = 2

#: Poll interval for the result loop; between polls the parent checks
#: worker liveness, so this bounds crash-detection latency.
_POLL_SECONDS = 0.05


class WorkerCrashed(RuntimeError):
    """A chunk could not be completed within the redispatch budget."""


# -- warm-once initialization ------------------------------------------

_WARM_LOCK = threading.Lock()
_WARM_STATS: dict | None = None


def _reinit_locks_after_fork() -> None:
    # A fork can happen while another thread of the parent holds one of
    # these locks (the serve layer forks shard processes from a process
    # that is also running handler threads).  The child would inherit
    # the lock *held forever*; give it fresh ones.  The guarded state
    # itself is fine: caches are either fully inherited or rebuilt.
    global _WARM_LOCK
    _WARM_LOCK = threading.Lock()
    try:
        from repro.machine.absplan import PLAN_CACHE

        PLAN_CACHE._lock = threading.Lock()
        # An attached persistent plan tier wraps a sqlite connection,
        # which must never be used across a fork.  The child detaches
        # it (the in-memory plans themselves are inherited fine) and
        # re-attaches its own store if it wants persistence — the
        # serve shards do exactly that in `_shard_main`.
        PLAN_CACHE._persist = None
    except Exception:
        pass


def warm_analysis_caches(include_heavy: bool = False) -> dict:
    """Initialize this process for analysis work, exactly once.

    Imports the full analyzer stack, touches the parsed corpus, and
    precompiles the ANF and CPS plans of every (non-heavy by default)
    corpus program into the global `PLAN_CACHE` — interning their
    constant `AbsVal`/store tables as a side effect.  Idempotent and
    thread-safe; returns the stats of the (first) warm-up.
    """
    global _WARM_STATS
    with _WARM_LOCK:
        if _WARM_STATS is not None:
            return _WARM_STATS
        started = time.perf_counter()
        # The imports are the dominant cost under spawn; under fork the
        # parent has usually paid them already and these are no-ops.
        import repro.analysis.engine  # noqa: F401  (plan analyzers)
        import repro.api  # noqa: F401  (run_comparison)
        import repro.survey  # noqa: F401  (survey workers)
        from repro.corpus import PROGRAMS
        from repro.cps import cps_transform
        from repro.machine.absplan import PLAN_CACHE

        # With a persistent tier attached (serve --incr-store, shard
        # warm-fork, `cachectl warm --plans`), these warm compilations
        # become disk loads after the first process: the `PLAN_CACHE`
        # miss path tries the store before the compiler.
        plans = 0
        for program in PROGRAMS.values():
            if program.heavy and not include_heavy:
                continue
            try:
                PLAN_CACHE.anf_plan(program.term)
                PLAN_CACHE.cps_plan(cps_transform(program.term))
                plans += 2
            except Exception:
                # Plans only cover the restricted subset; programs
                # outside it simply stay on the tree engine.
                continue
        snapshot = PLAN_CACHE.snapshot()
        _WARM_STATS = {
            "plans": plans,
            "programs": len(PROGRAMS),
            "plan_disk_loads": snapshot["disk_loads"],
            "plan_compiles": snapshot["compiles"],
            "warm_s": round(time.perf_counter() - started, 6),
            "pid": os.getpid(),
        }
        return _WARM_STATS


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reinit_locks_after_fork)


# -- the worker side ---------------------------------------------------


def _worker_main(conn, parent_pid: int) -> None:
    """One pool worker: warm once, then execute assigned chunks off
    its private pipe until the sentinel (or orphaning) says stop."""
    warm_analysis_caches()
    while True:
        try:
            if not conn.poll(1.0):
                if os.getppid() != parent_pid:
                    return  # orphaned: parent died without a sentinel
                continue
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        chunk_id, fn_bytes, items = message
        try:
            fn = pickle.loads(fn_bytes)
            rows = [fn(item) for item in items]
        except BaseException as exc:
            try:
                payload = pickle.dumps(exc)
            except Exception:
                payload = pickle.dumps(
                    RuntimeError(f"{type(exc).__name__}: {exc}")
                )
            reply = ("error", chunk_id, payload)
        else:
            reply = ("done", chunk_id, rows)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return


# -- the parent side ---------------------------------------------------


class _Worker:
    """Parent-side record for one worker process: its pipe end and
    the chunk id currently assigned to it (None when idle)."""

    __slots__ = ("process", "conn", "outstanding")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.outstanding: int | None = None


class PersistentPool:
    """``jobs`` long-lived, pre-warmed worker processes.

    One `map` runs at a time (a lock serializes callers); workers
    survive across maps, so the warm-up and process creation costs are
    paid once per pool, not once per batch.
    """

    def __init__(self, jobs: int, start_method: str | None = None) -> None:
        if jobs < 1:
            raise ValueError("need at least one worker")
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method
        if start_method == "fork":
            # Warm the parent *before* forking: children inherit the
            # imported modules, parsed corpus, and compiled plans
            # copy-on-write, making their own warm-up a no-op.
            warm_analysis_caches()
        self._ctx = multiprocessing.get_context(start_method)
        self.jobs = jobs
        self._workers: list[_Worker] = []
        self._map_lock = threading.Lock()
        # Chunk ids are unique across the pool's lifetime so a stale
        # reply from a map that errored out can never be mistaken for
        # a chunk of a later map.
        self._chunk_ids = itertools.count()
        self._closed = False
        self.respawns = 0
        self.maps_completed = 0
        self.chunks_dispatched = 0
        self.items_processed = 0
        for _ in range(jobs):
            self._workers.append(self._spawn_worker())

    def _spawn_worker(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, os.getpid()),
            name="repro-perf-pool-worker",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(process, parent_conn)

    # -- mapping ------------------------------------------------------

    def map(
        self,
        fn: Callable[[_In], _Out],
        items: Iterable[_In],
        chunksize: int | None = None,
    ) -> list[_Out]:
        """Order-preserving parallel map over the pool.

        Equivalent to ``[fn(item) for item in items]`` — including for
        ``None`` results — with crashes of individual workers healed
        by respawn + chunk redispatch (up to `MAX_CHUNK_RETRIES`).
        """
        if self._closed:
            raise RuntimeError("pool is shut down")
        work: Sequence[_In] = list(items)
        if not work:
            return []
        # Pickle the function once, eagerly: an unpicklable fn must
        # fail here with a clear error, not asynchronously in the
        # queue's feeder thread (which would hang the map).
        fn_bytes = pickle.dumps(fn)
        if chunksize is None:
            chunksize = max(1, len(work) // (self.jobs * 4))
        chunks: dict[int, Sequence[_In]] = {}
        for start in range(0, len(work), chunksize):
            chunks[next(self._chunk_ids)] = work[start : start + chunksize]
        with self._map_lock:
            return self._run_chunks(fn_bytes, chunks)

    def _run_chunks(
        self, fn_bytes: bytes, chunks: dict[int, Sequence]
    ) -> list:
        pending = dict(chunks)  # chunk_id -> items (until done)
        backlog = sorted(chunks)  # chunk ids awaiting assignment
        retries: dict[int, int] = {}
        finished: dict[int, list] = {}

        def assign(index: int) -> None:
            """Send backlog chunks to worker ``index`` until it has
            one outstanding (respawning it if the send hits EOF)."""
            while backlog:
                worker = self._workers[index]
                if worker.outstanding is not None:
                    return
                chunk_id = backlog[0]
                if chunk_id not in pending:
                    backlog.pop(0)
                    continue
                try:
                    worker.conn.send(
                        (chunk_id, fn_bytes, list(pending[chunk_id]))
                    )
                except (BrokenPipeError, OSError):
                    self._replace_dead(index, backlog, retries, pending)
                    continue
                backlog.pop(0)
                worker.outstanding = chunk_id
                self.chunks_dispatched += 1
                return

        for index in range(self.jobs):
            assign(index)
        while pending:
            ready = multiprocessing.connection.wait(
                [worker.conn for worker in self._workers],
                timeout=_POLL_SECONDS,
            )
            if not ready:
                # Belt and braces: a worker that died without its EOF
                # surfacing (shouldn't happen on POSIX) still gets
                # noticed by a liveness sweep.
                for index, worker in enumerate(self._workers):
                    if not worker.process.is_alive():
                        self._replace_dead(
                            index, backlog, retries, pending
                        )
                        assign(index)
                continue
            for conn in ready:
                index = next(
                    (
                        i
                        for i, worker in enumerate(self._workers)
                        if worker.conn is conn
                    ),
                    None,
                )
                if index is None:
                    continue  # already replaced this round
                worker = self._workers[index]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    # The worker died (SIGKILL, OOM, segfault): its
                    # pipe end closed, so this is both the detection
                    # and the exact record of what it was running.
                    self._replace_dead(index, backlog, retries, pending)
                    assign(index)
                    continue
                tag, chunk_id = message[0], message[1]
                worker.outstanding = None
                if tag == "done":
                    if chunk_id in pending:
                        finished[chunk_id] = message[2]
                        del pending[chunk_id]
                        self.items_processed += len(message[2])
                elif tag == "error":
                    if chunk_id in pending:
                        raise pickle.loads(message[2])
                assign(index)
        self.maps_completed += 1
        return [
            row
            for chunk_id in sorted(finished)
            for row in finished[chunk_id]
        ]

    def _replace_dead(
        self,
        index: int,
        backlog: list[int],
        retries: dict[int, int],
        pending: dict[int, Sequence],
    ) -> None:
        """Respawn the dead worker at ``index`` and redispatch the
        chunk it was assigned (bounded by `MAX_CHUNK_RETRIES`)."""
        worker = self._workers[index]
        chunk_id = worker.outstanding
        pid = worker.process.pid
        worker.process.join(timeout=1.0)
        try:
            worker.conn.close()
        except OSError:
            pass
        self._workers[index] = self._spawn_worker()
        self.respawns += 1
        if chunk_id is None or chunk_id not in pending:
            return
        retries[chunk_id] = retries.get(chunk_id, 0) + 1
        if retries[chunk_id] > MAX_CHUNK_RETRIES:
            raise WorkerCrashed(
                f"chunk {chunk_id} killed {retries[chunk_id]} "
                f"worker(s); last pid {pid}"
            )
        backlog.insert(0, chunk_id)

    # -- introspection ------------------------------------------------

    def snapshot(self) -> dict:
        """Pool statistics (for bench artifacts and debugging)."""
        return {
            "jobs": self.jobs,
            "start_method": self.start_method,
            "alive": sum(
                1 for w in self._workers if w.process.is_alive()
            ),
            "respawns": self.respawns,
            "maps_completed": self.maps_completed,
            "chunks_dispatched": self.chunks_dispatched,
            "items_processed": self.items_processed,
            "warm": warm_analysis_caches()
            if self.start_method == "fork"
            else None,
        }

    @property
    def worker_pids(self) -> list[int]:
        return [w.process.pid for w in self._workers]

    # -- shutdown -----------------------------------------------------

    def shutdown(self, timeout: float = 10.0) -> bool:
        """Drain gracefully: one sentinel per worker, join, then
        terminate stragglers.  Idempotent; returns True when every
        worker exited within ``timeout``."""
        if self._closed:
            return True
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + timeout
        for worker in self._workers:
            worker.process.join(
                timeout=max(0.0, deadline - time.monotonic())
            )
        clean = all(not w.process.is_alive() for w in self._workers)
        for worker in self._workers:
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        return clean


# -- the shared pool registry ------------------------------------------

_POOLS: dict[int, PersistentPool] = {}
_POOLS_LOCK = threading.Lock()


def get_pool(jobs: int) -> PersistentPool:
    """The shared `PersistentPool` with ``jobs`` workers, created (and
    warmed) on first use and reused for the rest of the run."""
    with _POOLS_LOCK:
        pool = _POOLS.get(jobs)
        if pool is None or pool._closed:
            pool = PersistentPool(jobs)
            _POOLS[jobs] = pool
        return pool


def shutdown_pools(timeout: float = 10.0) -> None:
    """Shut down every shared pool (registered at interpreter exit)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(timeout=timeout)


def _forget_pools() -> None:
    # A forked child must not try to drive (or atexit-join) the
    # parent's workers: they are the parent's children, not its own.
    _POOLS.clear()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_forget_pools)

atexit.register(shutdown_pools)
