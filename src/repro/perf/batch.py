"""An order-preserving parallel map over the persistent worker pool.

`repro.survey` and `repro.report` fan their per-program /
per-section work out through :func:`parallel_map`; the ``--jobs N``
CLI flag reaches it unchanged.  Results come back in input order, so
a parallel run folds to exactly the same aggregate as a serial one
(the batch tests enforce this).

The processes behind it are `repro.perf.pool.PersistentPool` workers:
created once per run, warmed once (plans precompiled, corpus parsed,
analyzer stack imported), and reused across every subsequent
`parallel_map` call — process creation and warm-up are paid once, not
once per batch.

Workers are separate processes, so ``fn`` and every item must be
picklable — module-level functions over plain records (program
*names*, random *seeds*), never closures or `CorpusProgram` objects
(whose ``initial`` builders are lambdas).
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Sequence, TypeVar

_In = TypeVar("_In")
_Out = TypeVar("_Out")


def effective_jobs(jobs: int | None, item_count: int | None = None) -> int:
    """Normalize a ``--jobs`` value: ``None``/``1`` mean serial, ``0``
    means one worker per CPU, and the count never exceeds the number
    of items."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        jobs = os.cpu_count() or 1
    if item_count is not None:
        jobs = min(jobs, max(item_count, 1))
    return jobs


def parallel_map(
    fn: Callable[[_In], _Out],
    items: Iterable[_In],
    jobs: int | None = None,
    chunksize: int | None = None,
) -> list[_Out]:
    """Map ``fn`` over ``items``, optionally across processes.

    Serial (and pool-free) when ``jobs`` resolves to 1, so the default
    path has zero multiprocessing overhead.
    """
    work: Sequence[_In] = list(items)
    jobs = effective_jobs(jobs, len(work))
    if jobs <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    from repro.perf.pool import get_pool

    return get_pool(jobs).map(fn, work, chunksize=chunksize)
