"""Hash-consing and join memoization for abstract stores and values.

The analyzers' hot loop hashes and compares `AbsStore` objects
constantly: loop detection keys on ``(term, store)``, and the CPS
analyzers re-join the same pair of stores once per duplicated path
(Section 6.2).  Interning makes structurally equal stores *pointer*
equal, so dict lookups in the active set and the eval memo hit the
``x is y`` fast path of ``PyObject_RichCompareBool``, the cached
``_hash`` is computed once per distinct store, and a join of two
interned stores can be memoized by object identity.

Everything here is semantics-free: interning only collapses equal
objects, and the join memo only caches a deterministic function, so
analyzer results and statistics are bit-identical with it on or off
(the equivalence tests in ``tests/perf`` enforce this).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable, Hashable

from repro.domains.absval import AbsVal
from repro.domains.store import AbsStore


@dataclass(frozen=True)
class PerfConfig:
    """Which `repro.perf` caches an analyzer runs with.

    ``intern`` and ``join_memo`` are invisible to results *and*
    statistics, so they default on.  The eval ``memo`` skips whole
    sub-derivations — results stay bit-identical but visit counts
    drop, so it defaults off and is opted into per run (``cache=True``
    or an explicit `PerfConfig`).
    """

    intern: bool = True
    join_memo: bool = True
    memo: bool = False

    @staticmethod
    def resolve(cache: "PerfConfig | bool | None") -> "PerfConfig":
        """Normalize the analyzers' ``cache`` argument.

        ``None`` means the default (interning only), ``True`` enables
        every cache, ``False`` disables them all, and a `PerfConfig`
        passes through.
        """
        if cache is None:
            return DEFAULT_CONFIG
        if cache is True:
            return FULL_CONFIG
        if cache is False:
            return OFF_CONFIG
        if isinstance(cache, PerfConfig):
            return cache
        raise TypeError(
            f"cache must be a PerfConfig, bool, or None, got {cache!r}"
        )


DEFAULT_CONFIG = PerfConfig()
FULL_CONFIG = PerfConfig(intern=True, join_memo=True, memo=True)
OFF_CONFIG = PerfConfig(intern=False, join_memo=False, memo=False)


@dataclass(slots=True)
class PerfStats:
    """Counters for the `repro.perf` caches of one analyzer run.

    ``bytes_saved`` is an estimate: the shallow size of each duplicate
    store/value released by interning (``sys.getsizeof`` of the object
    and its table), not a full deep measurement.
    """

    intern_store_hits: int = 0
    intern_store_misses: int = 0
    intern_value_hits: int = 0
    intern_value_misses: int = 0
    join_memo_hits: int = 0
    join_memo_misses: int = 0
    eval_cache_hits: int = 0
    eval_cache_misses: int = 0
    eval_cache_rejects: int = 0
    bytes_saved: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view, merged into metrics under ``perf.<name>``."""
        return {
            "intern_store_hits": self.intern_store_hits,
            "intern_store_misses": self.intern_store_misses,
            "intern_value_hits": self.intern_value_hits,
            "intern_value_misses": self.intern_value_misses,
            "join_memo_hits": self.join_memo_hits,
            "join_memo_misses": self.join_memo_misses,
            "eval_cache_hits": self.eval_cache_hits,
            "eval_cache_misses": self.eval_cache_misses,
            "eval_cache_rejects": self.eval_cache_rejects,
            "bytes_saved": self.bytes_saved,
        }

    @property
    def eval_cache_hit_rate(self) -> float:
        """Hits over probes of the eval memo (0.0 when never probed)."""
        probes = (
            self.eval_cache_hits
            + self.eval_cache_misses
            + self.eval_cache_rejects
        )
        return self.eval_cache_hits / probes if probes else 0.0

    @property
    def join_memo_hit_rate(self) -> float:
        """Hits over lookups of the store-join memo."""
        lookups = self.join_memo_hits + self.join_memo_misses
        return self.join_memo_hits / lookups if lookups else 0.0


def _store_bytes(store: AbsStore) -> int:
    """Shallow size estimate of one duplicate store."""
    table = getattr(store, "_table", None)
    if table is None:
        # Slot-addressed stores keep their entries in a flat tuple.
        table = store.vals
    return sys.getsizeof(store) + sys.getsizeof(table)


class Interner:
    """Per-analyzer intern tables for stores and values.

    The tables hold strong references to every canonical object, which
    makes ``id()`` stable for the analyzer's lifetime — the join memo
    exploits that by keying on ``(id(a), id(b))`` of *canonical*
    operands (unordered, since the pointwise store join is
    commutative).
    """

    __slots__ = ("stats", "_stores", "_values", "_join_memo")

    def __init__(self, stats: PerfStats | None = None) -> None:
        self.stats = stats if stats is not None else PerfStats()
        self._stores: dict[AbsStore, AbsStore] = {}
        self._values: dict[AbsVal, AbsVal] = {}
        self._join_memo: dict[tuple[int, int], AbsStore] = {}

    def __len__(self) -> int:
        return len(self._stores)

    def store(self, store: AbsStore) -> AbsStore:
        """The canonical representative of ``store``."""
        canon = self._stores.get(store)
        if canon is None:
            self._stores[store] = store
            self.stats.intern_store_misses += 1
            return store
        if canon is not store:
            self.stats.bytes_saved += _store_bytes(store)
        self.stats.intern_store_hits += 1
        return canon

    def value(self, value: AbsVal) -> AbsVal:
        """The canonical representative of ``value``."""
        canon = self._values.get(value)
        if canon is None:
            self._values[value] = value
            self.stats.intern_value_misses += 1
            return value
        if canon is not value:
            self.stats.bytes_saved += sys.getsizeof(value)
        self.stats.intern_value_hits += 1
        return canon

    def join_stores(self, a: AbsStore, b: AbsStore) -> AbsStore:
        """``a.join(b)``, memoized on the canonical pair."""
        if a is b:
            return a
        a = self.store(a)
        b = self.store(b)
        if a is b:
            return a
        ia, ib = id(a), id(b)
        key = (ia, ib) if ia < ib else (ib, ia)
        cached = self._join_memo.get(key)
        if cached is not None:
            self.stats.join_memo_hits += 1
            return cached
        joined = self.store(a.join(b))
        self._join_memo[key] = joined
        self.stats.join_memo_misses += 1
        return joined


class JoinMemo:
    """A generic memo for a commutative, deterministic binary join.

    Used by `repro.dataflow.mfp.solve_mfp` to canonicalize fact tables
    and absorb repeated edge joins; the analyzers use the specialized
    `Interner.join_stores` instead.  ``canon_key`` maps an operand to
    a hashable canonicalization key (identity when omitted); ``None``
    operands pass through untouched (the solver's "unreachable" fact).
    """

    __slots__ = ("_join", "_canon_key", "_canon", "_memo", "hits", "misses")

    def __init__(
        self,
        join: Callable,
        canon_key: Callable[[object], Hashable] | None = None,
    ) -> None:
        self._join = join
        self._canon_key = canon_key
        self._canon: dict = {}
        self._memo: dict[tuple[int, int], object] = {}
        self.hits = 0
        self.misses = 0

    def canonical(self, operand):
        """The canonical representative of ``operand``."""
        if operand is None:
            return None
        key = self._canon_key(operand) if self._canon_key else operand
        found = self._canon.get(key)
        if found is None:
            self._canon[key] = operand
            return operand
        return found

    def __call__(self, a, b):
        a = self.canonical(a)
        b = self.canonical(b)
        if a is b and a is not None:
            # Joins are idempotent.
            return a
        ia, ib = id(a), id(b)
        key = (ia, ib) if ia < ib else (ib, ia)
        found = self._memo.get(key)
        if found is not None:
            self.hits += 1
            return found
        joined = self.canonical(self._join(a, b))
        self._memo[key] = joined
        self.misses += 1
        return joined
