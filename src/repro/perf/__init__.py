"""`repro.perf`: the performance layer.

Three independent mechanisms, combinable per analyzer run via the
``cache`` argument (``PerfConfig.resolve`` semantics):

- **interning / hash-consing** (`Interner`): structurally equal
  abstract stores and values become pointer-equal, with a join memo
  on interned pairs — semantically invisible, on by default;
- **eval memoization** (wired into the analyzers through
  `repro.analysis.common.WorkBudgetMixin`): complete, context-free
  sub-derivation summaries are reused, collapsing the Section 6.2
  duplication families from exponential to linear visits while
  keeping results bit-identical — off by default (it changes visit
  counts);
- **parallel batch running** (`parallel_map` over
  `repro.perf.pool.PersistentPool`): an order-preserving map across
  long-lived, warm-once worker processes, used by the survey and
  report fan-outs (``--jobs N``) and, via `repro.serve.shard`, by the
  multi-process service.

`repro.perf.bench` (imported lazily by the CLI, since it depends on
the analyzers) times corpus and blowup-family workloads with the
caches on and off and writes ``BENCH_perf.json``.
"""

from repro.perf.batch import effective_jobs, parallel_map
from repro.perf.intern import (
    DEFAULT_CONFIG,
    FULL_CONFIG,
    OFF_CONFIG,
    Interner,
    JoinMemo,
    PerfConfig,
    PerfStats,
)
from repro.perf.pool import (
    PersistentPool,
    WorkerCrashed,
    get_pool,
    shutdown_pools,
    warm_analysis_caches,
)

__all__ = [
    "DEFAULT_CONFIG",
    "FULL_CONFIG",
    "OFF_CONFIG",
    "Interner",
    "JoinMemo",
    "PerfConfig",
    "PerfStats",
    "PersistentPool",
    "WorkerCrashed",
    "effective_jobs",
    "get_pool",
    "parallel_map",
    "shutdown_pools",
    "warm_analysis_caches",
]
