"""The `repro.perf` regression benchmark (``python -m repro bench``).

Times representative workloads with the caches off and on, checks the
cached answers are identical to the uncached ones, and writes the
result as ``BENCH_perf.json`` (schema ``repro.perf.bench/7``).  The
CI smoke job runs ``--quick`` and fails on a malformed payload or on
any cached/uncached divergence.

Timing discipline: every workload is repeated ``repeat`` times (a
fresh analyzer per repetition, only ``.run()`` inside the timed
region) and the **minimum** wall time is reported — the minimum is
the least-noise estimator on a busy machine, since scheduling and
allocator interference only ever add time.

Workloads:

- every non-heavy corpus program (semantic-CPS analyzer — the one the
  eval cache targets);
- the Section 6.2 blowup families (``conditional-chain``,
  ``call-site-chain``, and ``top-conditional-chain``, whose 2^k
  duplicated paths carry identical stores so the eval cache collapses
  them to O(k) — the headline speedup);
- the polyvariant analyzer on the recursive corpus programs;
- the ``engine`` section: compiled-plan vs tree-walking analyzers
  (`repro.analysis.engine`) on the large workloads, with the one-time
  plan compile cost reported separately from the per-run time (the
  compile is amortized across runs by the plan cache);
- the ``parallel`` section: the survey runner's two largest
  populations serial vs ``--jobs N`` on the persistent warmed worker
  pool (`repro.perf.pool`), with bit-identical aggregates enforced
  always and the speedup floor enforced only on machines with enough
  CPUs (``enforced``/``cpus`` make the gate honest on 1-CPU boxes);
- the ``pushdown`` section: the summary-based pushdown analyzer vs
  the direct analyzer on the corpus rows — per-row precision verdict
  (the validator fails if the pushdown answer is ever *less* precise
  than direct's), visits, and walls.  This is the Theorem 5.1 story
  in benchmark form: exact call/return matching buys precision, the
  row data shows what it costs in work;
- the ``plan_persist`` section: cold plan compile vs warm load from
  the persistent ``kind=plan`` store tier (`repro.incr.plans`), both
  transforms per program, with a field-identical-plan check and a
  warm-beats-cold gate (per kind where the compile clears the noise
  floor, and on the per-section totals);
- the ``plan_opt`` section: the peephole-optimized plan tier vs the
  baseline tier on the pc-loop workloads — run walls for both tiers
  with answers *and* the full statistics tuple enforced identical
  (the optimizer's bit-identity contract in benchmark form);
- the ``incremental`` section: cold (from-scratch) vs warm (unedited
  replay) vs warm-one-edit walls against the `repro.incr` persistent
  summary store, on the two large CPS workloads whose edits are
  abstract-value-neutral (``top-conditional-chain`` and
  ``ackermann-open``).  Warm walls include recorder setup (hashing,
  working-set preload), so the warm-edit-beats-cold gate is honest
  about the subsystem's own overhead.

Workloads whose uncached wall time is under a millisecond are flagged
``noise_exempt``: their speedup ratios are scheduler noise, and
downstream gating (CI comparisons, the report) must not fail on them.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Any, Callable

SCHEMA = "repro.perf.bench/7"

#: Workloads faster than this (uncached) are too small to time: their
#: speedup ratios are dominated by scheduler jitter, so they carry
#: ``noise_exempt: true`` and are excluded from ratio gating.
NOISE_FLOOR_S = 1e-3

#: A parallel survey leg whose *serial* wall is under this has nothing
#: worth parallelizing; its speedup is exempt from the floor.
PARALLEL_NOISE_FLOOR_S = 0.05

#: Fields every workload entry must carry (validation contract).
_RUN_FIELDS = ("wall_s", "visits")
_CACHED_FIELDS = _RUN_FIELDS + (
    "eval_cache_hits",
    "eval_cache_rejects",
    "eval_cache_hit_rate",
    "intern_store_hits",
    "join_memo_hits",
    "bytes_saved",
)
_ENGINE_TREE_FIELDS = ("wall_s", "visits")
_ENGINE_PLAN_FIELDS = ("compile_s", "run_s", "visits")
_INCR_COLD_FIELDS = ("wall_s", "visits")
_INCR_WARM_FIELDS = ("wall_s", "visits", "store_hits")
_PLAN_PERSIST_FIELDS = ("compile_s", "load_s")
_PLAN_OPT_FIELDS = ("run_s", "visits")


def _timed(
    make: Callable[[], Any], repeat: int
) -> tuple[Any, Any, float]:
    """Build a fresh analyzer per repetition, time only ``.run()``,
    and return ``(analyzer, result, min_seconds)``."""
    best: tuple[Any, Any, float] | None = None
    for _ in range(max(1, repeat)):
        analyzer = make()
        start = time.perf_counter()
        result = analyzer.run()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best[2]:
            best = (analyzer, result, elapsed)
    return best


def _min_seconds(thunk: Callable[[], Any], repeat: int) -> float:
    """Minimum wall time of ``thunk`` over ``repeat`` repetitions."""
    best: float | None = None
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        thunk()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def _answer_of(result: Any) -> Any:
    """A comparable answer from either result flavor."""
    if hasattr(result, "answer"):
        return result.answer
    # PolyvariantResult: compare the collapsed monovariant view.
    return (result.value, result.collapse().answer)


def _workload(
    name: str,
    analyzer_name: str,
    make: Callable[[bool], Any],
    repeat: int,
) -> dict:
    """Run one workload with the caches off then fully on."""
    an_off, res_off, wall_off = _timed(lambda: make(False), repeat)
    an_on, res_on, wall_on = _timed(lambda: make(True), repeat)
    perf = an_on.perf
    return {
        "name": name,
        "analyzer": analyzer_name,
        "uncached": {
            "wall_s": wall_off,
            "visits": an_off.stats.visits,
        },
        "cached": {
            "wall_s": wall_on,
            "visits": an_on.stats.visits,
            "eval_cache_hits": perf.eval_cache_hits,
            "eval_cache_rejects": perf.eval_cache_rejects,
            "eval_cache_hit_rate": perf.eval_cache_hit_rate,
            "intern_store_hits": perf.intern_store_hits,
            "join_memo_hits": perf.join_memo_hits,
            "bytes_saved": perf.bytes_saved,
        },
        "speedup": wall_off / wall_on if wall_on > 0 else 0.0,
        "noise_exempt": wall_off < NOISE_FLOOR_S,
        "answers_equal": _answer_of(res_off) == _answer_of(res_on),
    }


def _semantic_class(engine: str):
    if engine == "plan":
        from repro.analysis.engine import SemanticCpsPlanAnalyzer

        return SemanticCpsPlanAnalyzer
    from repro.analysis.semantic_cps import SemanticCpsAnalyzer

    return SemanticCpsAnalyzer


def _corpus_workloads(
    quick: bool, repeat: int, engine: str, plan_tier: str
) -> list[dict]:
    from repro.corpus import PROGRAMS
    from repro.domains.absval import Lattice
    from repro.domains.constprop import ConstPropDomain

    cls = _semantic_class(engine)
    extra = {"plan_tier": plan_tier} if engine == "plan" else {}
    lattice = Lattice(ConstPropDomain())
    names = list(PROGRAMS)
    if quick:
        names = [n for n in names if n in ("factorial", "even-odd", "church-pairs")]
    entries = []
    for name in names:
        program = PROGRAMS[name]
        if program.heavy:
            continue
        initial = program.initial_for(lattice)
        entries.append(
            _workload(
                f"corpus/{name}",
                "semantic-cps",
                lambda cache, t=program.term, i=initial: cls(
                    t, initial=i, loop_mode="top", cache=cache, **extra
                ),
                repeat,
            )
        )
    return entries


def _family_workloads(
    quick: bool, repeat: int, engine: str, plan_tier: str
) -> list[dict]:
    from repro.corpus import (
        call_site_chain,
        conditional_chain,
        top_conditional_chain,
    )
    from repro.domains.absval import Lattice
    from repro.domains.constprop import ConstPropDomain

    cls = _semantic_class(engine)
    extra = {"plan_tier": plan_tier} if engine == "plan" else {}
    lattice = Lattice(ConstPropDomain())
    families = [
        (conditional_chain, 8 if quick else 12),
        (call_site_chain, 6 if quick else 8),
        (top_conditional_chain, 12 if quick else 16),
    ]
    entries = []
    for family, k in families:
        program = family(k)
        initial = program.initial_for(lattice)
        entries.append(
            _workload(
                f"family/{program.name}",
                "semantic-cps",
                lambda cache, t=program.term, i=initial: cls(
                    t, initial=i, cache=cache, **extra
                ),
                repeat,
            )
        )
    return entries


def _polyvariant_workloads(
    quick: bool, repeat: int, engine: str, plan_tier: str
) -> list[dict]:
    from repro.corpus import PROGRAMS
    from repro.domains.absval import Lattice
    from repro.domains.constprop import ConstPropDomain

    if engine == "plan":
        from repro.analysis.engine import PolyvariantPlanAnalyzer as cls
    else:
        from repro.analysis.polyvariant import PolyvariantDirectAnalyzer as cls

    extra = {"plan_tier": plan_tier} if engine == "plan" else {}
    lattice = Lattice(ConstPropDomain())
    names = ("factorial",) if quick else ("factorial", "even-odd", "mini-evaluator")
    entries = []
    for name in names:
        program = PROGRAMS[name]
        initial = program.initial_for(lattice)
        entries.append(
            _workload(
                f"polyvariant/{name}",
                "direct-kcfa",
                lambda cache, t=program.term, i=initial: cls(
                    t, initial=i, cache=cache, **extra
                ),
                repeat,
            )
        )
    return entries


def _engine_row(
    name: str,
    analyzer_name: str,
    mk_tree: Callable[[], Any],
    mk_plan: Callable[[], Any],
    compile_plan: Callable[[], Any],
    repeat: int,
) -> dict:
    """One plan-vs-tree comparison: tree wall time vs plan run time,
    with the one-time (cache-amortized) plan compile cost reported
    separately."""
    tree_an, tree_res, tree_wall = _timed(mk_tree, repeat)
    compile_s = _min_seconds(compile_plan, repeat)
    plan_an, plan_res, plan_run = _timed(mk_plan, repeat)
    return {
        "name": name,
        "analyzer": analyzer_name,
        "tree": {"wall_s": tree_wall, "visits": tree_an.stats.visits},
        "plan": {
            "compile_s": compile_s,
            "run_s": plan_run,
            "visits": plan_an.stats.visits,
        },
        "speedup": tree_wall / plan_run if plan_run > 0 else 0.0,
        "noise_exempt": tree_wall < NOISE_FLOOR_S,
        "answers_equal": _answer_of(tree_res) == _answer_of(plan_res),
    }


def _engine_workloads(quick: bool, repeat: int) -> list[dict]:
    from repro.analysis.delta import delta_store
    from repro.analysis.direct import DirectAnalyzer
    from repro.analysis.engine import (
        DirectPlanAnalyzer,
        PolyvariantPlanAnalyzer,
        SemanticCpsPlanAnalyzer,
        SyntacticCpsPlanAnalyzer,
    )
    from repro.analysis.polyvariant import PolyvariantDirectAnalyzer
    from repro.analysis.semantic_cps import SemanticCpsAnalyzer
    from repro.analysis.syntactic_cps import SyntacticCpsAnalyzer
    from repro.corpus import PROGRAMS, top_conditional_chain
    from repro.cps import cps_transform
    from repro.domains.absval import Lattice
    from repro.domains.constprop import ConstPropDomain
    from repro.domains.store import AbsStore
    from repro.machine.absplan import compile_anf_plan, compile_cps_plan

    lattice = Lattice(ConstPropDomain())
    rows = []

    # The two large ("ackermann-class") headline workloads first: the
    # exponential top-conditional family and the heavy recursive
    # corpus program, both under the semantic-CPS analyzer.
    tcc = top_conditional_chain(12 if quick else 16)
    tcc_init = tcc.initial_for(lattice)
    rows.append(
        _engine_row(
            f"engine/{tcc.name}",
            "semantic-cps",
            lambda: SemanticCpsAnalyzer(tcc.term, initial=tcc_init),
            lambda: SemanticCpsPlanAnalyzer(tcc.term, initial=tcc_init),
            lambda: compile_anf_plan(tcc.term),
            repeat,
        )
    )
    ack = PROGRAMS["ackermann"]
    ack_init = ack.initial_for(lattice)
    rows.append(
        _engine_row(
            "engine/ackermann",
            "semantic-cps",
            lambda: SemanticCpsAnalyzer(
                ack.term, initial=ack_init, loop_mode="top"
            ),
            lambda: SemanticCpsPlanAnalyzer(
                ack.term, initial=ack_init, loop_mode="top"
            ),
            lambda: compile_anf_plan(ack.term),
            repeat,
        )
    )
    # Coverage rows: the remaining engines on small workloads.
    rows.append(
        _engine_row(
            "engine/ackermann",
            "direct",
            lambda: DirectAnalyzer(ack.term, initial=ack_init),
            lambda: DirectPlanAnalyzer(ack.term, initial=ack_init),
            lambda: compile_anf_plan(ack.term),
            repeat,
        )
    )
    fact = PROGRAMS["factorial"]
    fact_init = fact.initial_for(lattice)
    fact_cps = cps_transform(fact.term)
    fact_cps_init = dict(
        delta_store(AbsStore(lattice, fact_init)).items()
    )
    rows.append(
        _engine_row(
            "engine/factorial",
            "syntactic-cps",
            lambda: SyntacticCpsAnalyzer(
                fact_cps, initial=fact_cps_init, loop_mode="top"
            ),
            lambda: SyntacticCpsPlanAnalyzer(
                fact_cps, initial=fact_cps_init, loop_mode="top"
            ),
            lambda: compile_cps_plan(fact_cps),
            repeat,
        )
    )
    rows.append(
        _engine_row(
            "engine/factorial",
            "direct-kcfa",
            lambda: PolyvariantDirectAnalyzer(
                fact.term, k=1, initial=fact_init
            ),
            lambda: PolyvariantPlanAnalyzer(
                fact.term, k=1, initial=fact_init
            ),
            lambda: compile_anf_plan(fact.term),
            repeat,
        )
    )
    return rows


def _pushdown_section(quick: bool, repeat: int) -> list[dict]:
    """Pushdown-vs-direct on the corpus: per-row precision verdict
    plus the work both analyzers spent earning it.  The validator
    rejects any row whose verdict is ``right-more-precise`` — the
    pushdown analyzer's whole claim is that exact call/return matching
    never *loses* precision against the direct analyzer."""
    from repro.analysis.compare import compare_pushdown_to_direct
    from repro.analysis.direct import DirectAnalyzer
    from repro.analysis.pushdown import PushdownAnalyzer
    from repro.corpus import PROGRAMS
    from repro.domains.absval import Lattice
    from repro.domains.constprop import ConstPropDomain

    lattice = Lattice(ConstPropDomain())
    names = list(PROGRAMS)
    if quick:
        names = [
            n
            for n in names
            if n in ("theorem-5.1", "factorial", "even-odd", "church-pairs")
        ]
    entries = []
    for name in names:
        program = PROGRAMS[name]
        if program.heavy:
            continue
        initial = program.initial_for(lattice)
        _, d_res, d_wall = _timed(
            lambda t=program.term, i=initial: DirectAnalyzer(t, initial=i),
            repeat,
        )
        _, p_res, p_wall = _timed(
            lambda t=program.term, i=initial: PushdownAnalyzer(t, initial=i),
            repeat,
        )
        verdict = compare_pushdown_to_direct(p_res, d_res)
        entries.append(
            {
                "name": f"pushdown/{name}",
                "verdict": verdict.value,
                "direct": {"wall_s": d_wall, "visits": d_res.stats.visits},
                "pushdown": {
                    "wall_s": p_wall,
                    "visits": p_res.stats.visits,
                    "returns_analyzed": p_res.stats.returns_analyzed,
                    "loop_cuts": p_res.stats.loop_cuts,
                },
                "work_ratio": (
                    p_res.stats.visits / d_res.stats.visits
                    if d_res.stats.visits
                    else 0.0
                ),
                "noise_exempt": d_wall < NOISE_FLOOR_S,
            }
        )
    return entries


def _incremental_row(
    name: str,
    base: Any,
    edited: Any,
    initial: dict,
    repeat: int,
    loop_mode: str = "reject",
) -> dict:
    """Cold (from-scratch), warm (unedited replay), and warm-one-edit
    walls for one workload against a fresh persistent store.

    Cold runs carry no recorder — they are the plain from-scratch
    baseline.  The store is seeded once (untimed), then warm runs
    attach a *read-only* recorder so repetitions cannot warm the store
    for each other: the edited run is always measured against exactly
    the old term's summaries.  Recorder setup (Merkle hashing and the
    working-set preload) is inside the timed region — a real
    incremental run pays it, so the speedup must too.
    """
    from repro.analysis.semantic_cps import SemanticCpsAnalyzer
    from repro.incr.hash import TermHasher, merkle_diff
    from repro.incr.recorder import SummaryRecorder
    from repro.incr.store import IncrStore

    def make(term):
        return SemanticCpsAnalyzer(
            term, initial=dict(initial), loop_mode=loop_mode, cache=True
        )

    hasher = TermHasher()
    with IncrStore(":memory:") as store:
        _, cold_res, cold_wall = _timed(lambda: make(base), repeat)
        _, edit_ref, _ = _timed(lambda: make(edited), 1)
        seeder = make(base)
        seed_rec = SummaryRecorder(
            seeder,
            store,
            program=base,
            initial_store=seeder.initial_store,
            hasher=hasher,
        )
        seeder.attach_recorder(seed_rec)
        seeder.run()
        seed_rec.flush()

        def replay(term):
            best = None
            for _ in range(max(1, repeat)):
                analyzer = make(term)
                before = store.stats.hits
                start = time.perf_counter()
                analyzer.attach_recorder(
                    SummaryRecorder(
                        analyzer,
                        store,
                        program=term,
                        initial_store=analyzer.initial_store,
                        hasher=hasher,
                        readonly=True,
                    )
                )
                result = analyzer.run()
                wall = time.perf_counter() - start
                hits = store.stats.hits - before
                if best is None or wall < best[1]:
                    best = (result, wall, hits)
            return best

        warm_res, warm_wall, warm_hits = replay(base)
        edit_res, edit_wall, edit_hits = replay(edited)
        dirty = merkle_diff(base, edited, hasher)
    return {
        "name": name,
        "analyzer": "semantic-cps",
        "cold": {"wall_s": cold_wall, "visits": cold_res.stats.visits},
        "warm": {
            "wall_s": warm_wall,
            "visits": warm_res.stats.visits,
            "store_hits": warm_hits,
        },
        "edited": {
            "wall_s": edit_wall,
            "visits": edit_res.stats.visits,
            "store_hits": edit_hits,
            "dirty_paths": len(dirty),
        },
        "speedup": cold_wall / edit_wall if edit_wall > 0 else 0.0,
        "noise_exempt": cold_wall < NOISE_FLOOR_S,
        "answers_equal": (
            warm_res.answer == cold_res.answer
            and edit_res.answer == edit_ref.answer
        ),
    }


def _incremental_section(quick: bool, repeat: int) -> list[dict]:
    """The two incremental showcase workloads: an exponential-path
    chain and an open-argument Ackermann, each with an
    abstract-value-neutral one-sub-term edit (the store can only
    replay a judgment whose entry store is unchanged, so the edit must
    not perturb abstract values at the reused frames)."""
    from repro.corpus import ackermann_open, top_conditional_chain
    from repro.domains.absval import Lattice
    from repro.domains.constprop import ConstPropDomain

    lattice = Lattice(ConstPropDomain())
    # k = 32 in quick mode too: the chain must be long enough that the
    # cold wall clears recorder setup (~1.5ms of hashing + preload)
    # with margin, or the warm-edit-beats-cold gate rides the noise.
    k = 32
    tcc = top_conditional_chain(k)
    tcc_edit = top_conditional_chain(k, p_addend=3)
    ack = ackermann_open(1)
    ack_edit = ackermann_open(2)
    return [
        _incremental_row(
            f"incremental/{tcc.name}",
            tcc.term,
            tcc_edit.term,
            tcc.initial_for(lattice),
            repeat,
        ),
        _incremental_row(
            "incremental/ackermann-open",
            ack.term,
            ack_edit.term,
            ack.initial_for(lattice),
            repeat,
            loop_mode="top",
        ),
    ]


def _plans_equal(left: Any, right: Any) -> bool:
    """Field-by-field identity of two compiled plans — the codec's
    round-trip contract (identical fields ⇒ identical execution, the
    engines being deterministic functions of the plan)."""
    if left is None or right is None or type(left) is not type(right):
        return False
    return all(
        getattr(left, slot) == getattr(right, slot)
        for slot in type(left).__slots__
    )


def _plan_persist_row(name: str, term: Any, repeat: int) -> dict:
    """Cold compile vs warm load for one program, both transforms.

    The load path is the steady state of a warm-started process: JSON
    decode plus the structural node-index walk, with the tier's
    long-lived `TermHasher` memoizing the subject digest after the
    first probe (exactly what a persistent server's tier does)."""
    from repro.cps import cps_transform
    from repro.incr.plans import PlanPersistTier
    from repro.incr.store import IncrStore
    from repro.machine.absplan import compile_anf_plan, compile_cps_plan

    cps_term = cps_transform(term)
    with IncrStore(":memory:") as store:
        tier = PlanPersistTier(store)
        anf_compile = _min_seconds(lambda: compile_anf_plan(term), repeat)
        cps_compile = _min_seconds(lambda: compile_cps_plan(cps_term), repeat)
        anf_plan = compile_anf_plan(term)
        cps_plan = compile_cps_plan(cps_term)
        saved = tier.save("anf", term, anf_plan) and tier.save(
            "cps", cps_term, cps_plan
        )
        anf_load = _min_seconds(lambda: tier.load("anf", term), repeat)
        cps_load = _min_seconds(lambda: tier.load("cps", cps_term), repeat)
        loaded_anf = tier.load("anf", term)
        loaded_cps = tier.load("cps", cps_term)
    cold = anf_compile + cps_compile
    warm = anf_load + cps_load
    return {
        "name": name,
        "anf": {"compile_s": anf_compile, "load_s": anf_load},
        "cps": {"compile_s": cps_compile, "load_s": cps_load},
        "speedup": cold / warm if warm > 0 else 0.0,
        "noise_exempt": cold < NOISE_FLOOR_S,
        "plans_equal": (
            saved
            and _plans_equal(loaded_anf, anf_plan)
            and _plans_equal(loaded_cps, cps_plan)
        ),
    }


def _plan_persist_section(quick: bool, repeat: int) -> dict:
    """Warm-start economics of the ``kind=plan`` store tier: what a
    restarted (or freshly forked) process pays to load each plan from
    disk vs recompiling it.  ``total`` sums the per-row minima — the
    aggregate a corpus-wide ``cachectl warm --plans`` warm start
    actually saves, and the gate that stays clear of the per-row
    noise floor."""
    from repro.corpus import PROGRAMS, top_conditional_chain

    names = ["factorial", "even-odd", "church-pairs", "mini-evaluator"]
    if quick:
        names = ["factorial", "church-pairs"]
    rows = [
        _plan_persist_row(
            f"plan_persist/{name}", PROGRAMS[name].term, repeat
        )
        for name in names
    ]
    tcc = top_conditional_chain(12 if quick else 16)
    rows.append(
        _plan_persist_row(f"plan_persist/{tcc.name}", tcc.term, repeat)
    )
    cold = sum(
        row[kind]["compile_s"] for row in rows for kind in ("anf", "cps")
    )
    warm = sum(
        row[kind]["load_s"] for row in rows for kind in ("anf", "cps")
    )
    from repro.incr.plans import plan_cfg

    return {
        "cfg": plan_cfg(),
        "rows": rows,
        "total": {
            "compile_s": cold,
            "load_s": warm,
            "speedup": cold / warm if warm > 0 else 0.0,
            "noise_exempt": cold < NOISE_FLOOR_S,
        },
    }


def _plan_opt_row(
    name: str,
    analyzer_name: str,
    make: Callable[[str], Any],
    repeat: int,
) -> dict:
    """Optimized vs baseline plan tier on one pc-loop workload.

    The optimizer's contract is *bit-identity*, so the row carries the
    full statistics tuple of both runs and the validator enforces
    equality — a tier that changed so much as a join count fails the
    bench, not just the differential suite."""
    base_an, base_res, base_wall = _timed(lambda: make("base"), repeat)
    opt_an, opt_res, opt_wall = _timed(lambda: make("opt"), repeat)
    return {
        "name": name,
        "analyzer": analyzer_name,
        "base": {"run_s": base_wall, "visits": base_an.stats.visits},
        "opt": {"run_s": opt_wall, "visits": opt_an.stats.visits},
        "speedup": base_wall / opt_wall if opt_wall > 0 else 0.0,
        "noise_exempt": base_wall < NOISE_FLOOR_S,
        "answers_equal": (
            _answer_of(base_res) == _answer_of(opt_res)
            and base_an.stats == opt_an.stats
        ),
    }


def _plan_opt_section(quick: bool, repeat: int) -> list[dict]:
    from repro.analysis.delta import delta_store
    from repro.analysis.engine import (
        DirectPlanAnalyzer,
        SemanticCpsPlanAnalyzer,
        SyntacticCpsPlanAnalyzer,
    )
    from repro.corpus import PROGRAMS, top_conditional_chain
    from repro.cps import cps_transform
    from repro.domains.absval import Lattice
    from repro.domains.constprop import ConstPropDomain
    from repro.domains.store import AbsStore

    lattice = Lattice(ConstPropDomain())
    tcc = top_conditional_chain(12 if quick else 16)
    tcc_init = tcc.initial_for(lattice)
    ack = PROGRAMS["ackermann"]
    ack_init = ack.initial_for(lattice)
    fact = PROGRAMS["factorial"]
    fact_cps = cps_transform(fact.term)
    fact_cps_init = dict(
        delta_store(AbsStore(lattice, fact.initial_for(lattice))).items()
    )
    return [
        _plan_opt_row(
            f"plan_opt/{tcc.name}",
            "semantic-cps",
            lambda tier: SemanticCpsPlanAnalyzer(
                tcc.term, initial=tcc_init, plan_tier=tier
            ),
            repeat,
        ),
        _plan_opt_row(
            "plan_opt/ackermann",
            "direct",
            lambda tier: DirectPlanAnalyzer(
                ack.term, initial=ack_init, plan_tier=tier
            ),
            repeat,
        ),
        _plan_opt_row(
            "plan_opt/factorial",
            "syntactic-cps",
            lambda tier: SyntacticCpsPlanAnalyzer(
                fact_cps,
                initial=fact_cps_init,
                loop_mode="top",
                plan_tier=tier,
            ),
            repeat,
        ),
    ]


def _survey_results_match(serial: Any, parallel: Any) -> bool:
    """Field-by-field identity of two `SurveyResult` aggregates —
    the bit-identity contract of an order-preserving parallel fold."""
    return (
        serial.count == parallel.count
        and serial.budget_exceeded == parallel.budget_exceeded
        and serial.direct_vs_syntactic == parallel.direct_vs_syntactic
        and serial.semantic_vs_direct == parallel.semantic_vs_direct
        and serial.semantic_vs_syntactic == parallel.semantic_vs_syntactic
        and serial.pushdown_vs_direct == parallel.pushdown_vs_direct
        and serial.direct_visits == parallel.direct_visits
        and serial.semantic_visits == parallel.semantic_visits
        and serial.syntactic_visits == parallel.syntactic_visits
        and serial.pushdown_visits == parallel.pushdown_visits
    )


def _parallel_section(quick: bool, engine: str, jobs: int) -> dict:
    """Serial vs ``jobs``-way walls for the two largest survey
    populations on the persistent pool.

    Identity (``matches``) is enforced unconditionally by the
    validator; the speedup floor only where the hardware can deliver
    it — ``enforced`` is false on a 1-CPU box and ``required_speedup``
    scales with the CPUs actually available, so the payload stays
    honest instead of asserting physically impossible ratios.
    """
    import os

    from repro.perf.pool import get_pool
    from repro.survey import survey_random, survey_random_open

    jobs = max(2, jobs)
    count = 20 if quick else 200
    depth = 3
    cpus = os.cpu_count() or 1
    populations = []
    runners = (
        (
            "random-closed",
            lambda j: survey_random(
                count=count, depth=depth, jobs=j, engine=engine
            ),
        ),
        (
            "random-open",
            lambda j: survey_random_open(
                count=count, depth=depth, jobs=j, engine=engine
            ),
        ),
    )
    # Create + warm the pool up front so worker start-up is not
    # charged to the first population's parallel wall (the whole
    # point of a persistent pool is that this cost is paid once).
    pool = get_pool(jobs)
    for name, run in runners:
        start = time.perf_counter()
        serial_result = run(1)
        serial_s = time.perf_counter() - start
        start = time.perf_counter()
        parallel_result = run(jobs)
        parallel_s = time.perf_counter() - start
        populations.append(
            {
                "population": name,
                "count": count,
                "depth": depth,
                "serial_s": serial_s,
                "parallel_s": parallel_s,
                "speedup": serial_s / parallel_s if parallel_s > 0 else 0.0,
                "noise_exempt": serial_s < PARALLEL_NOISE_FLOOR_S,
                "matches": _survey_results_match(
                    serial_result, parallel_result
                ),
            }
        )
    return {
        "jobs": jobs,
        "cpus": cpus,
        "required_speedup": max(1.2, min(jobs, cpus) / 2),
        "enforced": cpus >= 2,
        "pool": pool.snapshot(),
        "populations": populations,
    }


def run_bench(
    quick: bool = False,
    out: str | None = None,
    repeat: int = 5,
    engine: str = "tree",
    generated_at: str | None = None,
    jobs: int = 4,
    plan_tier: str = "opt",
) -> dict:
    """Run the benchmark; optionally write the JSON payload to ``out``.

    ``repeat`` is the min-of-N repetition count; ``engine`` selects
    the analyzer engine for the cache-comparison workloads (the
    ``engine`` section always measures both engines); ``jobs`` is the
    worker count for the ``parallel`` section (minimum 2);
    ``plan_tier`` selects the plan tier those plan-engine workloads
    run on (the ``plan_opt`` section always measures both tiers).
    ``generated_at`` lets the caller (the CLI, CI) stamp the run; the
    current UTC time is used when omitted.
    """
    from repro.analysis.engine import check_engine
    from repro.machine.absplan import check_plan_tier

    check_engine(engine)
    check_plan_tier(plan_tier)
    payload = {
        "schema": SCHEMA,
        "quick": quick,
        "repeat": max(1, repeat),
        "engine_mode": engine,
        "plan_tier": plan_tier,
        "generated_at": generated_at
        or time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "workloads": (
            _corpus_workloads(quick, repeat, engine, plan_tier)
            + _family_workloads(quick, repeat, engine, plan_tier)
            + _polyvariant_workloads(quick, repeat, engine, plan_tier)
        ),
        "engine": _engine_workloads(quick, repeat),
        "plan_persist": _plan_persist_section(quick, repeat),
        "plan_opt": _plan_opt_section(quick, repeat),
        "pushdown": _pushdown_section(quick, repeat),
        "parallel": _parallel_section(quick, engine, jobs),
        "incremental": _incremental_section(quick, repeat),
    }
    validate_bench(payload)
    if out is not None:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    return payload


def validate_bench(payload: Any) -> None:
    """Raise ``ValueError`` if ``payload`` is not a well-formed bench
    result or if any workload's cached (or compiled-plan) answer
    diverged from the reference run."""
    if not isinstance(payload, dict):
        raise ValueError("bench payload must be a JSON object")
    if payload.get("schema") != SCHEMA:
        raise ValueError(
            f"bench schema must be {SCHEMA!r}, got {payload.get('schema')!r}"
        )
    meta = payload.get("meta")
    if not isinstance(meta, dict):
        raise ValueError("bench payload must carry a meta section")
    for field in ("python", "platform"):
        if not isinstance(meta.get(field), str):
            raise ValueError(f"bench meta missing {field!r}")
    workloads = payload.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        raise ValueError("bench payload must carry a non-empty workload list")
    for entry in workloads:
        for field in (
            "name", "analyzer", "uncached", "cached", "speedup",
            "noise_exempt", "answers_equal",
        ):
            if field not in entry:
                raise ValueError(f"workload missing field {field!r}: {entry!r}")
        for field in _RUN_FIELDS:
            if field not in entry["uncached"]:
                raise ValueError(
                    f"workload {entry['name']!r} uncached run missing {field!r}"
                )
        for field in _CACHED_FIELDS:
            if field not in entry["cached"]:
                raise ValueError(
                    f"workload {entry['name']!r} cached run missing {field!r}"
                )
        if entry["answers_equal"] is not True:
            raise ValueError(
                f"workload {entry['name']!r}: cached answer diverged from uncached"
            )
    engine_rows = payload.get("engine")
    if not isinstance(engine_rows, list) or not engine_rows:
        raise ValueError("bench payload must carry a non-empty engine section")
    for entry in engine_rows:
        for field in (
            "name", "analyzer", "tree", "plan", "speedup",
            "noise_exempt", "answers_equal",
        ):
            if field not in entry:
                raise ValueError(f"engine row missing field {field!r}: {entry!r}")
        for field in _ENGINE_TREE_FIELDS:
            if field not in entry["tree"]:
                raise ValueError(
                    f"engine row {entry['name']!r} tree run missing {field!r}"
                )
        for field in _ENGINE_PLAN_FIELDS:
            if field not in entry["plan"]:
                raise ValueError(
                    f"engine row {entry['name']!r} plan run missing {field!r}"
                )
        if entry["answers_equal"] is not True:
            raise ValueError(
                f"engine row {entry['name']!r}: plan answer diverged from tree"
            )
    pushdown_rows = payload.get("pushdown")
    if not isinstance(pushdown_rows, list) or not pushdown_rows:
        raise ValueError(
            "bench payload must carry a non-empty pushdown section"
        )
    for entry in pushdown_rows:
        for field in (
            "name", "verdict", "direct", "pushdown", "work_ratio",
            "noise_exempt",
        ):
            if field not in entry:
                raise ValueError(
                    f"pushdown row missing field {field!r}: {entry!r}"
                )
        for run in ("direct", "pushdown"):
            for field in _RUN_FIELDS:
                if field not in entry[run]:
                    raise ValueError(
                        f"pushdown row {entry['name']!r} {run} run "
                        f"missing {field!r}"
                    )
        # The precision gate: summaries may tie or win, never lose.
        if entry["verdict"] not in ("equal", "left-more-precise"):
            raise ValueError(
                f"pushdown row {entry['name']!r}: pushdown answer is "
                f"less precise than direct ({entry['verdict']!r})"
            )
    parallel = payload.get("parallel")
    if not isinstance(parallel, dict):
        raise ValueError("bench payload must carry a parallel section")
    for field in ("jobs", "cpus", "required_speedup", "enforced", "pool"):
        if field not in parallel:
            raise ValueError(f"parallel section missing {field!r}")
    populations = parallel.get("populations")
    if not isinstance(populations, list) or not populations:
        raise ValueError(
            "parallel section must carry a non-empty population list"
        )
    for entry in populations:
        for field in (
            "population", "count", "serial_s", "parallel_s", "speedup",
            "noise_exempt", "matches",
        ):
            if field not in entry:
                raise ValueError(
                    f"parallel population missing {field!r}: {entry!r}"
                )
        # Identity is physics-independent: enforced unconditionally.
        if entry["matches"] is not True:
            raise ValueError(
                f"parallel survey {entry['population']!r}: parallel "
                "aggregate diverged from serial"
            )
        # Speedup is not: only gated where the CPUs exist and the
        # serial wall is long enough to be worth parallelizing.
        if (
            parallel["enforced"]
            and not entry["noise_exempt"]
            and entry["speedup"] < parallel["required_speedup"]
        ):
            raise ValueError(
                f"parallel survey {entry['population']!r}: speedup "
                f"{entry['speedup']:.2f}x below the "
                f"{parallel['required_speedup']:.2f}x floor "
                f"({parallel['cpus']} CPUs, jobs={parallel['jobs']})"
            )
    incremental = payload.get("incremental")
    if not isinstance(incremental, list) or not incremental:
        raise ValueError(
            "bench payload must carry a non-empty incremental section"
        )
    for entry in incremental:
        for field in (
            "name", "analyzer", "cold", "warm", "edited", "speedup",
            "noise_exempt", "answers_equal",
        ):
            if field not in entry:
                raise ValueError(
                    f"incremental row missing field {field!r}: {entry!r}"
                )
        for field in _INCR_COLD_FIELDS:
            if field not in entry["cold"]:
                raise ValueError(
                    f"incremental row {entry['name']!r} cold run "
                    f"missing {field!r}"
                )
        for run in ("warm", "edited"):
            for field in _INCR_WARM_FIELDS:
                if field not in entry[run]:
                    raise ValueError(
                        f"incremental row {entry['name']!r} {run} run "
                        f"missing {field!r}"
                    )
        if "dirty_paths" not in entry["edited"]:
            raise ValueError(
                f"incremental row {entry['name']!r} edited run "
                "missing 'dirty_paths'"
            )
        # Bit-identity is physics-independent: always enforced.
        if entry["answers_equal"] is not True:
            raise ValueError(
                f"incremental row {entry['name']!r}: warm answer "
                "diverged from from-scratch"
            )
        # The point of the subsystem: a one-sub-term edit must beat a
        # from-scratch run (except where the cold wall is noise).
        if (
            not entry["noise_exempt"]
            and entry["edited"]["wall_s"] >= entry["cold"]["wall_s"]
        ):
            raise ValueError(
                f"incremental row {entry['name']!r}: warm one-edit "
                f"wall {entry['edited']['wall_s']:.4f}s did not beat "
                f"the cold wall {entry['cold']['wall_s']:.4f}s"
            )
    plan_persist = payload.get("plan_persist")
    if not isinstance(plan_persist, dict):
        raise ValueError("bench payload must carry a plan_persist section")
    for field in ("cfg", "rows", "total"):
        if field not in plan_persist:
            raise ValueError(f"plan_persist section missing {field!r}")
    persist_rows = plan_persist["rows"]
    if not isinstance(persist_rows, list) or not persist_rows:
        raise ValueError(
            "plan_persist section must carry a non-empty row list"
        )
    for entry in persist_rows:
        for field in (
            "name", "anf", "cps", "speedup", "noise_exempt", "plans_equal",
        ):
            if field not in entry:
                raise ValueError(
                    f"plan_persist row missing field {field!r}: {entry!r}"
                )
        for kind in ("anf", "cps"):
            for field in _PLAN_PERSIST_FIELDS:
                if field not in entry[kind]:
                    raise ValueError(
                        f"plan_persist row {entry['name']!r} {kind} "
                        f"missing {field!r}"
                    )
        # Round-trip identity is physics-independent: always enforced.
        if entry["plans_equal"] is not True:
            raise ValueError(
                f"plan_persist row {entry['name']!r}: loaded plan "
                "diverged from the compiled plan"
            )
        # The tier's whole point: loading a persisted plan must beat
        # recompiling it (per kind, where the compile clears the
        # noise floor).
        for kind in ("anf", "cps"):
            if (
                entry[kind]["compile_s"] >= NOISE_FLOOR_S
                and entry[kind]["load_s"] >= entry[kind]["compile_s"]
            ):
                raise ValueError(
                    f"plan_persist row {entry['name']!r}: warm {kind} "
                    f"load {entry[kind]['load_s']:.6f}s did not beat "
                    f"the cold compile {entry[kind]['compile_s']:.6f}s"
                )
    total = plan_persist["total"]
    for field in ("compile_s", "load_s", "speedup", "noise_exempt"):
        if field not in total:
            raise ValueError(f"plan_persist total missing {field!r}")
    if not total["noise_exempt"] and total["load_s"] >= total["compile_s"]:
        raise ValueError(
            f"plan_persist total: warm loads {total['load_s']:.6f}s did "
            f"not beat cold compiles {total['compile_s']:.6f}s"
        )
    plan_opt = payload.get("plan_opt")
    if not isinstance(plan_opt, list) or not plan_opt:
        raise ValueError(
            "bench payload must carry a non-empty plan_opt section"
        )
    for entry in plan_opt:
        for field in (
            "name", "analyzer", "base", "opt", "speedup",
            "noise_exempt", "answers_equal",
        ):
            if field not in entry:
                raise ValueError(
                    f"plan_opt row missing field {field!r}: {entry!r}"
                )
        for tier in ("base", "opt"):
            for field in _PLAN_OPT_FIELDS:
                if field not in entry[tier]:
                    raise ValueError(
                        f"plan_opt row {entry['name']!r} {tier} run "
                        f"missing {field!r}"
                    )
        # The optimizer's bit-identity contract (answers and the full
        # statistics tuple): always enforced.
        if entry["answers_equal"] is not True:
            raise ValueError(
                f"plan_opt row {entry['name']!r}: optimized-tier "
                "answer or statistics diverged from the baseline tier"
            )


def validate_bench_file(path: str) -> dict:
    """Load ``path`` and validate it; returns the payload."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    validate_bench(payload)
    return payload


def summarize(payload: dict) -> str:
    """A short human-readable table of the bench payload."""
    lines = [
        f"{'workload':38} {'uncached':>10} {'cached':>10} {'speedup':>8} {'hit rate':>9}"
    ]
    for entry in payload["workloads"]:
        cached = entry["cached"]
        name = entry["name"] + ("*" if entry.get("noise_exempt") else "")
        lines.append(
            f"{name:38} "
            f"{entry['uncached']['wall_s']:>9.4f}s "
            f"{cached['wall_s']:>9.4f}s "
            f"{entry['speedup']:>7.1f}x "
            f"{cached['eval_cache_hit_rate']:>8.1%}"
        )
    lines.append("")
    lines.append(
        f"{'plan vs tree':38} {'tree':>10} {'compile':>10} {'run':>10} {'speedup':>8}"
    )
    for entry in payload["engine"]:
        plan = entry["plan"]
        name = entry["name"] + " [" + entry["analyzer"] + "]"
        name += "*" if entry.get("noise_exempt") else ""
        lines.append(
            f"{name:38} "
            f"{entry['tree']['wall_s']:>9.4f}s "
            f"{plan['compile_s']:>9.4f}s "
            f"{plan['run_s']:>9.4f}s "
            f"{entry['speedup']:>7.1f}x"
        )
    lines.append("")
    lines.append(
        f"{'pushdown vs direct':38} {'direct':>10} {'pushdown':>10} {'work':>7} verdict"
    )
    for entry in payload["pushdown"]:
        name = entry["name"] + ("*" if entry.get("noise_exempt") else "")
        lines.append(
            f"{name:38} "
            f"{entry['direct']['wall_s']:>9.4f}s "
            f"{entry['pushdown']['wall_s']:>9.4f}s "
            f"{entry['work_ratio']:>6.1f}x "
            f"{entry['verdict']}"
        )
    lines.append("")
    lines.append(
        f"{'incremental':38} {'cold':>10} {'warm':>10} {'one-edit':>10} {'speedup':>8}"
    )
    for entry in payload["incremental"]:
        name = entry["name"] + ("*" if entry.get("noise_exempt") else "")
        lines.append(
            f"{name:38} "
            f"{entry['cold']['wall_s']:>9.4f}s "
            f"{entry['warm']['wall_s']:>9.4f}s "
            f"{entry['edited']['wall_s']:>9.4f}s "
            f"{entry['speedup']:>7.1f}x"
        )
    lines.append("")
    lines.append(
        f"{'plan persist (compile vs load)':38} {'compile':>10} {'load':>10} {'speedup':>8}"
    )
    persist = payload["plan_persist"]
    for entry in persist["rows"] + [dict(persist["total"], name="total")]:
        name = entry["name"] + ("*" if entry.get("noise_exempt") else "")
        if "anf" in entry:
            compile_s = entry["anf"]["compile_s"] + entry["cps"]["compile_s"]
            load_s = entry["anf"]["load_s"] + entry["cps"]["load_s"]
        else:
            compile_s, load_s = entry["compile_s"], entry["load_s"]
        lines.append(
            f"{name:38} "
            f"{compile_s:>9.4f}s "
            f"{load_s:>9.4f}s "
            f"{entry['speedup']:>7.1f}x"
        )
    lines.append("")
    lines.append(
        f"{'plan tier (base vs opt)':38} {'base':>10} {'opt':>10} {'speedup':>8}"
    )
    for entry in payload["plan_opt"]:
        name = entry["name"] + " [" + entry["analyzer"] + "]"
        name += "*" if entry.get("noise_exempt") else ""
        lines.append(
            f"{name:38} "
            f"{entry['base']['run_s']:>9.4f}s "
            f"{entry['opt']['run_s']:>9.4f}s "
            f"{entry['speedup']:>7.1f}x"
        )
    parallel = payload["parallel"]
    lines.append("")
    for entry in parallel["populations"]:
        exempt = "*" if entry.get("noise_exempt") else ""
        lines.append(
            f"parallel {entry['population']}{exempt} x{entry['count']}: "
            f"serial {entry['serial_s']:.2f}s, "
            f"jobs={parallel['jobs']} {entry['parallel_s']:.2f}s "
            f"({entry['speedup']:.1f}x, match: {entry['matches']})"
        )
    gate = (
        "enforced"
        if parallel["enforced"]
        else f"not enforced ({parallel['cpus']} CPU)"
    )
    lines.append(
        f"parallel speedup floor {parallel['required_speedup']:.1f}x: "
        f"{gate}; * = sub-noise-floor wall, ratio exempt"
    )
    return "\n".join(lines)
