"""The `repro.perf` regression benchmark (``python -m repro bench``).

Times representative workloads with the caches off and on, checks the
cached answers are identical to the uncached ones, and writes the
result as ``BENCH_perf.json`` (schema ``repro.perf.bench/1``).  The
CI smoke job runs ``--quick`` and fails on a malformed payload or on
any cached/uncached divergence.

Workloads:

- every non-heavy corpus program (semantic-CPS analyzer — the one the
  eval cache targets);
- the Section 6.2 blowup families (``conditional-chain``,
  ``call-site-chain``, and ``top-conditional-chain``, whose 2^k
  duplicated paths carry identical stores so the eval cache collapses
  them to O(k) — the headline speedup);
- the polyvariant analyzer on the recursive corpus programs;
- the survey runner at ``--jobs 1`` vs ``--jobs 4`` (honest numbers:
  on a single-CPU box the parallel run is expected to *lose* to the
  serial one on process overhead).
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable

SCHEMA = "repro.perf.bench/1"

#: Fields every workload entry must carry (validation contract).
_RUN_FIELDS = ("wall_s", "visits")
_CACHED_FIELDS = _RUN_FIELDS + (
    "eval_cache_hits",
    "eval_cache_rejects",
    "eval_cache_hit_rate",
    "intern_store_hits",
    "join_memo_hits",
    "bytes_saved",
)


def _timed(make: Callable[[], Any]) -> tuple[Any, Any, float]:
    """Build an analyzer, run it, return (analyzer, result, seconds)."""
    analyzer = make()
    start = time.perf_counter()
    result = analyzer.run()
    return analyzer, result, time.perf_counter() - start


def _answer_of(result: Any) -> Any:
    """A comparable answer from either result flavor."""
    if hasattr(result, "answer"):
        return result.answer
    # PolyvariantResult: compare the collapsed monovariant view.
    return (result.value, result.collapse().answer)


def _workload(name: str, analyzer_name: str, make: Callable[[bool], Any]) -> dict:
    """Run one workload with the caches off then fully on."""
    an_off, res_off, wall_off = _timed(lambda: make(False))
    an_on, res_on, wall_on = _timed(lambda: make(True))
    perf = an_on.perf
    return {
        "name": name,
        "analyzer": analyzer_name,
        "uncached": {
            "wall_s": wall_off,
            "visits": an_off.stats.visits,
        },
        "cached": {
            "wall_s": wall_on,
            "visits": an_on.stats.visits,
            "eval_cache_hits": perf.eval_cache_hits,
            "eval_cache_rejects": perf.eval_cache_rejects,
            "eval_cache_hit_rate": perf.eval_cache_hit_rate,
            "intern_store_hits": perf.intern_store_hits,
            "join_memo_hits": perf.join_memo_hits,
            "bytes_saved": perf.bytes_saved,
        },
        "speedup": wall_off / wall_on if wall_on > 0 else 0.0,
        "answers_equal": _answer_of(res_off) == _answer_of(res_on),
    }


def _corpus_workloads(quick: bool) -> list[dict]:
    from repro.analysis.semantic_cps import SemanticCpsAnalyzer
    from repro.corpus import PROGRAMS
    from repro.domains.absval import Lattice
    from repro.domains.constprop import ConstPropDomain

    lattice = Lattice(ConstPropDomain())
    names = list(PROGRAMS)
    if quick:
        names = [n for n in names if n in ("factorial", "even-odd", "church-pairs")]
    entries = []
    for name in names:
        program = PROGRAMS[name]
        if program.heavy:
            continue
        initial = program.initial_for(lattice)
        entries.append(
            _workload(
                f"corpus/{name}",
                "semantic-cps",
                lambda cache, t=program.term, i=initial: SemanticCpsAnalyzer(
                    t, initial=i, loop_mode="top", cache=cache
                ),
            )
        )
    return entries


def _family_workloads(quick: bool) -> list[dict]:
    from repro.analysis.semantic_cps import SemanticCpsAnalyzer
    from repro.corpus import (
        call_site_chain,
        conditional_chain,
        top_conditional_chain,
    )
    from repro.domains.absval import Lattice
    from repro.domains.constprop import ConstPropDomain

    lattice = Lattice(ConstPropDomain())
    families = [
        (conditional_chain, 8 if quick else 12),
        (call_site_chain, 6 if quick else 8),
        (top_conditional_chain, 12 if quick else 16),
    ]
    entries = []
    for family, k in families:
        program = family(k)
        initial = program.initial_for(lattice)
        entries.append(
            _workload(
                f"family/{program.name}",
                "semantic-cps",
                lambda cache, t=program.term, i=initial: SemanticCpsAnalyzer(
                    t, initial=i, cache=cache
                ),
            )
        )
    return entries


def _polyvariant_workloads(quick: bool) -> list[dict]:
    from repro.analysis.polyvariant import PolyvariantDirectAnalyzer
    from repro.corpus import PROGRAMS
    from repro.domains.absval import Lattice
    from repro.domains.constprop import ConstPropDomain

    lattice = Lattice(ConstPropDomain())
    names = ("factorial",) if quick else ("factorial", "even-odd", "mini-evaluator")
    entries = []
    for name in names:
        program = PROGRAMS[name]
        initial = program.initial_for(lattice)
        entries.append(
            _workload(
                f"polyvariant/{name}",
                "direct-kcfa",
                lambda cache, t=program.term, i=initial: PolyvariantDirectAnalyzer(
                    t, initial=i, cache=cache
                ),
            )
        )
    return entries


def _survey_section(quick: bool) -> dict:
    from repro.survey import survey_random_open

    count = 20 if quick else 200
    depth = 3
    timings: dict[str, float] = {}
    results = {}
    for jobs in (1, 4):
        start = time.perf_counter()
        results[jobs] = survey_random_open(count=count, depth=depth, jobs=jobs)
        timings[str(jobs)] = time.perf_counter() - start
    serial, parallel = results[1], results[4]
    matches = (
        serial.count == parallel.count
        and serial.budget_exceeded == parallel.budget_exceeded
        and serial.direct_vs_syntactic == parallel.direct_vs_syntactic
        and serial.semantic_vs_direct == parallel.semantic_vs_direct
        and serial.semantic_vs_syntactic == parallel.semantic_vs_syntactic
        and serial.direct_visits == parallel.direct_visits
        and serial.semantic_visits == parallel.semantic_visits
        and serial.syntactic_visits == parallel.syntactic_visits
    )
    return {
        "population": "random-open",
        "count": count,
        "depth": depth,
        "wall_s_by_jobs": timings,
        "matches": matches,
    }


def run_bench(quick: bool = False, out: str | None = None) -> dict:
    """Run the benchmark; optionally write the JSON payload to ``out``."""
    payload = {
        "schema": SCHEMA,
        "quick": quick,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "workloads": (
            _corpus_workloads(quick)
            + _family_workloads(quick)
            + _polyvariant_workloads(quick)
        ),
        "survey": _survey_section(quick),
    }
    validate_bench(payload)
    if out is not None:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    return payload


def validate_bench(payload: Any) -> None:
    """Raise ``ValueError`` if ``payload`` is not a well-formed bench
    result or if any workload's cached answer diverged."""
    if not isinstance(payload, dict):
        raise ValueError("bench payload must be a JSON object")
    if payload.get("schema") != SCHEMA:
        raise ValueError(
            f"bench schema must be {SCHEMA!r}, got {payload.get('schema')!r}"
        )
    workloads = payload.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        raise ValueError("bench payload must carry a non-empty workload list")
    for entry in workloads:
        for field in ("name", "analyzer", "uncached", "cached", "speedup", "answers_equal"):
            if field not in entry:
                raise ValueError(f"workload missing field {field!r}: {entry!r}")
        for field in _RUN_FIELDS:
            if field not in entry["uncached"]:
                raise ValueError(
                    f"workload {entry['name']!r} uncached run missing {field!r}"
                )
        for field in _CACHED_FIELDS:
            if field not in entry["cached"]:
                raise ValueError(
                    f"workload {entry['name']!r} cached run missing {field!r}"
                )
        if entry["answers_equal"] is not True:
            raise ValueError(
                f"workload {entry['name']!r}: cached answer diverged from uncached"
            )
    survey = payload.get("survey")
    if not isinstance(survey, dict) or "wall_s_by_jobs" not in survey:
        raise ValueError("bench payload must carry a survey section")
    if survey.get("matches") is not True:
        raise ValueError("survey parallel aggregate diverged from serial")


def validate_bench_file(path: str) -> dict:
    """Load ``path`` and validate it; returns the payload."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    validate_bench(payload)
    return payload


def summarize(payload: dict) -> str:
    """A short human-readable table of the bench payload."""
    lines = [
        f"{'workload':38} {'uncached':>10} {'cached':>10} {'speedup':>8} {'hit rate':>9}"
    ]
    for entry in payload["workloads"]:
        cached = entry["cached"]
        lines.append(
            f"{entry['name']:38} "
            f"{entry['uncached']['wall_s']:>9.4f}s "
            f"{cached['wall_s']:>9.4f}s "
            f"{entry['speedup']:>7.1f}x "
            f"{cached['eval_cache_hit_rate']:>8.1%}"
        )
    survey = payload["survey"]
    per_jobs = ", ".join(
        f"jobs={jobs}: {wall:.2f}s"
        for jobs, wall in survey["wall_s_by_jobs"].items()
    )
    lines.append(
        f"survey {survey['population']} x{survey['count']}: {per_jobs} "
        f"(aggregates match: {survey['matches']})"
    )
    return "\n".join(lines)
