"""Regenerate the measured tables of EXPERIMENTS.md programmatically.

``python -m repro report`` prints a Markdown report with the witness
tables (Theorems 5.1/5.2), the Section 6.2 cost series, the loop
unrolling instability table, and the Section 6.3 route comparison —
computed fresh, so the numbers in the documentation can always be
reproduced from the current code.
"""

from __future__ import annotations

from io import StringIO

from repro.analysis import (
    NonComputableError,
    analyze_direct,
    analyze_semantic_cps,
)
from repro.api import run_comparison
from repro.corpus import (
    SHIVERS_EXAMPLE,
    THEOREM_51_WITNESS,
    THEOREM_52_CONDITIONAL,
    THEOREM_52_TWO_CLOSURES,
    call_site_chain,
    conditional_chain,
    loop_feeding_conditional,
)
from repro.domains import ConstPropDomain, Lattice
from repro.opt import duplicate_join_continuations
from repro.perf import parallel_map

DOM = ConstPropDomain()
LAT = Lattice(DOM)


def witness_table() -> str:
    """Theorem 5.1/5.2 per-variable facts and verdicts, plus the
    pushdown analyzer's answer (which eliminates the false returns the
    direct column suffers on the Theorem 5.1 witnesses)."""
    out = StringIO()
    out.write(
        "| program | direct a1 | cps a1 | direct a2 | cps a2 "
        "| verdict | pushdown a2 | pushdown vs direct |\n"
    )
    out.write("|---|---|---|---|---|---|---|---|\n")
    for program in (
        THEOREM_51_WITNESS,
        SHIVERS_EXAMPLE,
        THEOREM_52_CONDITIONAL,
        THEOREM_52_TWO_CLOSURES,
    ):
        report = run_comparison(program)
        out.write(
            f"| {program.name} "
            f"| `{report.direct.value_of('a1')!r}` "
            f"| `{report.syntactic.value_of('a1')!r}` "
            f"| `{report.direct.value_of('a2')!r}` "
            f"| `{report.syntactic.value_of('a2')!r}` "
            f"| {report.direct_vs_syntactic.value} "
            f"| `{report.pushdown.value_of('a2')!r}` "
            f"| {report.pushdown_vs_direct.value} |\n"
        )
    return out.getvalue()


def cost_table(lengths: tuple[int, ...] = (2, 4, 6, 8, 10, 12)) -> str:
    """Section 6.2 conditional-chain visit counts."""
    out = StringIO()
    out.write("| k | direct | semantic-CPS | syntactic-CPS | pushdown |\n")
    out.write("|---|---|---|---|---|\n")
    for k in lengths:
        report = run_comparison(conditional_chain(k))
        out.write(
            f"| {k} | {report.direct.stats.visits} "
            f"| {report.semantic.stats.visits} "
            f"| {report.syntactic.stats.visits} "
            f"| {report.pushdown.stats.visits} |\n"
        )
    return out.getvalue()


def call_cost_table(lengths: tuple[int, ...] = (1, 2, 3, 4)) -> str:
    """Section 6.2 call-site-chain visit counts (false-return blowup)."""
    out = StringIO()
    out.write("| k | direct | semantic-CPS | syntactic-CPS | pushdown |\n")
    out.write("|---|---|---|---|---|\n")
    for k in lengths:
        report = run_comparison(call_site_chain(k))
        out.write(
            f"| {k} | {report.direct.stats.visits} "
            f"| {report.semantic.stats.visits} "
            f"| {report.syntactic.stats.visits} "
            f"| {report.pushdown.stats.visits} |\n"
        )
    return out.getvalue()


def loop_table(
    threshold: int = 10, bounds: tuple[int, ...] = (4, 9, 10, 20)
) -> str:
    """Section 6.2 unrolling instability."""
    program = loop_feeding_conditional(threshold)
    out = StringIO()
    out.write("| unroll bound | analyzed r |\n|---|---|\n")
    for bound in bounds:
        result = analyze_semantic_cps(
            program.term, DOM, loop_mode="unroll", unroll_bound=bound
        )
        out.write(f"| {bound} | `{result.value_of('r').num}` |\n")
    return out.getvalue()


def routes_table() -> str:
    """Section 6.3 route comparison on the conditional witness."""
    program = THEOREM_52_CONDITIONAL
    initial = program.initial_for(LAT)
    report = run_comparison(program)
    duplicated = duplicate_join_continuations(program.term)
    dup_result = analyze_direct(duplicated, DOM, initial=initial)
    out = StringIO()
    out.write("| route | result | visits |\n|---|---|---|\n")
    out.write(
        f"| plain direct | `{report.direct.value!r}` "
        f"| {report.direct.stats.visits} |\n"
    )
    out.write(
        f"| syntactic-CPS | `{report.syntactic.value!r}` "
        f"| {report.syntactic.stats.visits} |\n"
    )
    out.write(
        f"| duplication + direct | `{dup_result.value!r}` "
        f"| {dup_result.stats.visits} |\n"
    )
    return out.getvalue()


def work_table() -> str:
    """Per-analyzer `repro.obs` work counters on the witness programs.

    The Section 6.2 comparison beyond raw visits: joins, widenings and
    store growth show *where* the CPS analyzers spend their extra work
    (per-path duplication shows up as returns analyzed, not joins).
    """
    out = StringIO()
    out.write(
        "| program | analyzer | visits | joins | widenings "
        "| returns | max store |\n"
    )
    out.write("|---|---|---|---|---|---|---|\n")
    for program in (
        THEOREM_51_WITNESS,
        THEOREM_52_CONDITIONAL,
        SHIVERS_EXAMPLE,
    ):
        report = run_comparison(program)
        for result in report.results:
            stats = result.stats
            out.write(
                f"| {program.name} | {result.analyzer} "
                f"| {stats.visits} | {stats.joins} | {stats.widenings} "
                f"| {stats.returns_analyzed} | {stats.max_store_size} |\n"
            )
    return out.getvalue()


def lint_scoreboard(quick: bool = False) -> str:
    """The per-corpus lint-yield scoreboard: which semantic (``L0xx``)
    lints each analyzer proves on each corpus program.

    This is the paper's precision question phrased as tool output — a
    cell differing across the columns of one row is a program where
    analyzer choice changes what a linter can report.  ``budget!``
    marks analyzer runs that exceeded the work budget (semantic rules
    unavailable); ``clean`` marks runs with no semantic findings.
    """
    from repro.corpus.programs import PROGRAMS
    from repro.lint import LINT_ANALYZERS, run_lints

    out = StringIO()
    out.write("| program | " + " | ".join(LINT_ANALYZERS) + " |\n")
    out.write("|---" * (len(LINT_ANALYZERS) + 1) + "|\n")
    for program in PROGRAMS.values():
        if quick and program.heavy:
            continue
        cells = []
        for analyzer in LINT_ANALYZERS:
            report = run_lints(
                program, analyzer=analyzer, max_visits=60_000
            )
            if report.analysis_error is not None:
                cells.append(f"budget! ({report.analysis_error})")
            else:
                cells.append(", ".join(report.semantic_codes) or "clean")
        out.write(f"| {program.name} | " + " | ".join(cells) + " |\n")
    return out.getvalue()


def computability_note(threshold: int = 10) -> str:
    """Confirm the reject/top behaviour of the CPS analyzers."""
    program = loop_feeding_conditional(threshold)
    direct = analyze_direct(program.term, DOM)
    try:
        analyze_semantic_cps(program.term, DOM)
        rejected = False
    except NonComputableError:
        rejected = True
    top = analyze_semantic_cps(program.term, DOM, loop_mode="top")
    return (
        f"- direct analysis: `r = {direct.value_of('r').num}` (terminates)\n"
        f"- semantic-CPS, faithful mode: "
        f"{'raises NonComputableError' if rejected else 'UNEXPECTEDLY COMPUTED'}\n"
        f"- semantic-CPS, 'top' mode: `r = {top.value_of('r').num}` "
        f"(matches direct)\n"
    )


#: The report's sections — (key, title); keys dispatch in
#: `_render_section`, a module-level function so `parallel_map` can
#: ship section rendering to worker processes.
_SECTIONS: tuple[tuple[str, str], ...] = (
    ("witnesses", "Theorem 5.1 / 5.2 witnesses"),
    ("cost", "Section 6.2: conditional-chain cost (rule visits)"),
    ("call-cost", "Section 6.2: call-site-chain cost (rule visits)"),
    ("loop", "Section 6.2: loop unrolling (threshold 10)"),
    ("work", "Section 6.2: per-analyzer work counters"),
    ("computability", "Section 6.2: computability"),
    ("routes", "Section 6.3: routes on the conditional witness"),
    ("lint", "Lint yield: semantic findings per analyzer (repro.lint)"),
)


def _render_section(args: tuple[str, bool]) -> str:
    """Render one report section body (picklable worker)."""
    key, quick = args
    if key == "witnesses":
        return witness_table()
    if key == "cost":
        return cost_table((2, 4) if quick else (2, 4, 6, 8, 10, 12))
    if key == "call-cost":
        return call_cost_table((1, 2, 3) if quick else (1, 2, 3, 4))
    if key == "loop":
        return loop_table()
    if key == "work":
        return work_table()
    if key == "computability":
        return computability_note()
    if key == "routes":
        return routes_table()
    if key == "lint":
        return lint_scoreboard(quick=quick)
    raise KeyError(f"unknown report section {key!r}")


def section_keys() -> tuple[str, ...]:
    """The valid ``section`` arguments of :func:`generate_report`."""
    return tuple(key for key, _ in _SECTIONS)


def generate_report(
    quick: bool = False,
    jobs: int | None = None,
    section: str | None = None,
) -> str:
    """The full Markdown report.

    Args:
        quick: shrink the cost sweeps (used by the test suite; the CLI
            always produces the full series).
        jobs: render the sections in parallel worker processes
            (`repro.perf.parallel_map`); the assembled report is
            byte-identical to a serial run.
        section: render only the named section (see
            :func:`section_keys`), without the report header.
    """
    sections = _SECTIONS
    if section is not None:
        sections = tuple(
            entry for entry in _SECTIONS if entry[0] == section
        )
        if not sections:
            raise KeyError(f"unknown report section {section!r}")
    bodies = parallel_map(
        _render_section,
        [(key, quick) for key, _ in sections],
        jobs=jobs,
    )
    out = StringIO()
    if section is None:
        out.write("# Measured results (regenerated)\n")
    for (_, title), body in zip(sections, bodies):
        out.write(f"\n## {title}\n\n{body}")
    return out.getvalue()
