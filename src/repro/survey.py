"""Empirical survey: how often do the analyses actually differ?

The paper proves the direct and CPS analyses *can* differ in both
directions and argues the differences matter in practice.  This module
quantifies the phenomenon over program populations: it runs the N-way
comparison (direct, both CPS analyzers, and the pushdown analyzer)
over the corpus and over seeded random programs and tabulates the
Section 5 verdicts — plus the pushdown-vs-direct verdict, which
measures how often false returns actually bite — and the relative
analyzer costs.

``python -m repro survey --count 200`` prints the tabulation;
``--jobs N`` fans the per-program work out over N worker processes
(`repro.perf.parallel_map`).  Each program's outcome travels back as a
picklable `SurveyRow` and rows are folded in input order, so a
parallel survey aggregates to exactly the same `SurveyResult` as a
serial one.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.common import BudgetExceeded
from repro.analysis.compare import Precision
from repro.anf import normalize
from repro.api import run_comparison
from repro.corpus import PROGRAMS, CorpusProgram
from repro.domains.protocol import NumDomain
from repro.domains.absval import Lattice
from repro.domains.constprop import ConstPropDomain
from repro.gen import random_open_term, random_program
from repro.lang.syntax import free_variables, term_size
from repro.perf import effective_jobs, parallel_map

#: Default per-program analyzer work budget.  The syntactic-CPS
#: analyzer is worst-case super-exponential (Section 6.2 + false
#: returns); programs that blow past the budget are counted rather
#: than analyzed to completion.
DEFAULT_BUDGET = 200_000


@dataclass(frozen=True)
class SurveyRow:
    """One program's survey outcome, reduced to picklable plain data
    so it can cross a worker-process boundary."""

    direct_vs_syntactic: str
    semantic_vs_direct: str
    semantic_vs_syntactic: str
    direct_visits: int
    semantic_visits: int
    syntactic_visits: int
    size: int
    #: Empty string when the comparison ran without the pushdown
    #: analyzer (e.g. on the plan engine, which it does not support).
    pushdown_vs_direct: str = ""
    pushdown_visits: int = 0

    @staticmethod
    def from_report(report) -> "SurveyRow":
        """Reduce a `ComparisonReport` to its survey-relevant facts."""
        has_pushdown = report.pushdown is not None
        return SurveyRow(
            direct_vs_syntactic=report.direct_vs_syntactic.value,
            semantic_vs_direct=report.semantic_vs_direct.value,
            semantic_vs_syntactic=report.semantic_vs_syntactic.value,
            direct_visits=report.direct.stats.visits,
            semantic_visits=report.semantic.stats.visits,
            syntactic_visits=report.syntactic.stats.visits,
            size=term_size(report.term),
            pushdown_vs_direct=(
                report.pushdown_vs_direct.value if has_pushdown else ""
            ),
            pushdown_visits=(
                report.pushdown.stats.visits if has_pushdown else 0
            ),
        )


@dataclass
class SurveyResult:
    """Aggregated verdicts and costs over a program population."""

    population: str
    count: int = 0
    direct_vs_syntactic: Counter = field(default_factory=Counter)
    semantic_vs_direct: Counter = field(default_factory=Counter)
    semantic_vs_syntactic: Counter = field(default_factory=Counter)
    pushdown_vs_direct: Counter = field(default_factory=Counter)
    direct_visits: int = 0
    semantic_visits: int = 0
    syntactic_visits: int = 0
    pushdown_visits: int = 0
    total_size: int = 0
    budget_exceeded: int = 0

    def record(self, report) -> None:
        """Fold one comparison report into the aggregate."""
        self.record_row(SurveyRow.from_report(report))

    def record_row(self, row: "SurveyRow | None") -> None:
        """Fold one `SurveyRow` (None means the program blew the work
        budget) into the aggregate."""
        if row is None:
            self.budget_exceeded += 1
            return
        self.count += 1
        self.direct_vs_syntactic[row.direct_vs_syntactic] += 1
        self.semantic_vs_direct[row.semantic_vs_direct] += 1
        self.semantic_vs_syntactic[row.semantic_vs_syntactic] += 1
        if row.pushdown_vs_direct:
            self.pushdown_vs_direct[row.pushdown_vs_direct] += 1
        self.direct_visits += row.direct_visits
        self.semantic_visits += row.semantic_visits
        self.syntactic_visits += row.syntactic_visits
        self.pushdown_visits += row.pushdown_visits
        self.total_size += row.size

    def verdict_share(self, counter: Counter, verdict: Precision) -> float:
        """Fraction of the population with the given verdict."""
        if not self.count:
            return 0.0
        return counter[verdict.value] / self.count

    def summary(self) -> str:
        """A human-readable tabulation."""
        lines = [
            f"population: {self.population} "
            f"({self.count} programs analyzed, {self.budget_exceeded} "
            f"hit the work budget, avg size "
            f"{self.total_size / max(self.count, 1):.1f} nodes)",
            f"  mean analyzer visits: direct "
            f"{self.direct_visits / max(self.count, 1):.1f}, semantic-CPS "
            f"{self.semantic_visits / max(self.count, 1):.1f}, syntactic-CPS "
            f"{self.syntactic_visits / max(self.count, 1):.1f}, pushdown "
            f"{self.pushdown_visits / max(self.count, 1):.1f}",
        ]
        for label, counter in (
            ("direct vs syntactic-CPS", self.direct_vs_syntactic),
            ("semantic vs direct", self.semantic_vs_direct),
            ("semantic vs syntactic", self.semantic_vs_syntactic),
            ("pushdown vs direct", self.pushdown_vs_direct),
        ):
            shares = ", ".join(
                f"{verdict}: {count}" for verdict, count in counter.most_common()
            )
            lines.append(f"  {label:24} {shares}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Per-program workers (module-level, so multiprocessing can pickle
# them; they receive program *names* and random *seeds*, never terms
# or `CorpusProgram` records, whose initial-store builders are
# lambdas).
# ----------------------------------------------------------------------


def _survey_corpus_worker(args: tuple) -> "SurveyRow | None":
    name, budget, engine, plan_tier = args
    try:
        return SurveyRow.from_report(
            run_comparison(
                PROGRAMS[name],
                max_visits=budget,
                engine=engine,
                plan_tier=plan_tier,
            )
        )
    except BudgetExceeded:
        return None


def _survey_random_worker(args: tuple) -> "SurveyRow | None":
    seed, depth, budget, engine, plan_tier = args
    term = normalize(random_program(seed, depth))
    try:
        return SurveyRow.from_report(
            run_comparison(
                term, max_visits=budget, engine=engine, plan_tier=plan_tier
            )
        )
    except BudgetExceeded:
        return None


def _survey_random_open_worker(args: tuple) -> "SurveyRow | None":
    import random as _random

    seed, depth, inputs, budget, engine, plan_tier = args
    domain = ConstPropDomain()
    lattice = Lattice(domain)
    term = normalize(random_open_term(_random.Random(seed), depth, inputs))
    initial = {
        name: lattice.of_num(domain.top) for name in free_variables(term)
    }
    try:
        return SurveyRow.from_report(
            run_comparison(
                term,
                domain=domain,
                initial=initial,
                max_visits=budget,
                engine=engine,
                plan_tier=plan_tier,
            )
        )
    except BudgetExceeded:
        return None


def _fold(population: str, rows: Iterable["SurveyRow | None"]) -> SurveyResult:
    result = SurveyResult(population)
    for row in rows:
        result.record_row(row)
    return result


def survey_programs(
    programs: Iterable[CorpusProgram],
    population: str,
    domain: NumDomain | None = None,
    budget: int = DEFAULT_BUDGET,
    jobs: int | None = None,
    engine: str = "tree",
    plan_tier: str = "opt",
) -> SurveyResult:
    """Survey an iterable of corpus programs.

    ``jobs`` fans the programs out over worker processes; the parallel
    path requires the default domain and registry programs (anything
    else falls back to the serial loop, since program records carry
    unpicklable builders).
    """
    programs = list(programs)
    registry = all(PROGRAMS.get(p.name) is p for p in programs)
    if effective_jobs(jobs, len(programs)) > 1 and domain is None and registry:
        rows = parallel_map(
            _survey_corpus_worker,
            [(p.name, budget, engine, plan_tier) for p in programs],
            jobs=jobs,
        )
        return _fold(population, rows)

    def row_of(program: CorpusProgram) -> "SurveyRow | None":
        try:
            return SurveyRow.from_report(
                run_comparison(
                    program,
                    domain=domain,
                    max_visits=budget,
                    engine=engine,
                    plan_tier=plan_tier,
                )
            )
        except BudgetExceeded:
            return None

    return _fold(population, (row_of(p) for p in programs))


def survey_corpus(
    domain: NumDomain | None = None,
    budget: int = DEFAULT_BUDGET,
    jobs: int | None = None,
    engine: str = "tree",
    plan_tier: str = "opt",
) -> SurveyResult:
    """Survey the built-in corpus."""
    return survey_programs(
        PROGRAMS.values(),
        "corpus",
        domain,
        budget,
        jobs=jobs,
        engine=engine,
        plan_tier=plan_tier,
    )


def survey_random(
    count: int = 100,
    depth: int = 4,
    seed_base: int = 0,
    domain: NumDomain | None = None,
    budget: int = DEFAULT_BUDGET,
    jobs: int | None = None,
    engine: str = "tree",
    plan_tier: str = "opt",
) -> SurveyResult:
    """Survey ``count`` seeded random closed programs.

    Closed simply-typed programs fold completely under constant
    propagation, so all verdicts come out equal — included as the
    baseline population.  See :func:`survey_random_open` for the
    population where the paper's phenomena occur.
    """
    population = f"random-closed(depth={depth})"
    seeds = range(seed_base, seed_base + count)
    if effective_jobs(jobs, count) > 1 and domain is None:
        rows = parallel_map(
            _survey_random_worker,
            [(seed, depth, budget, engine, plan_tier) for seed in seeds],
            jobs=jobs,
        )
        return _fold(population, rows)

    def row_of(seed: int) -> "SurveyRow | None":
        term = normalize(random_program(seed, depth))
        try:
            return SurveyRow.from_report(
                run_comparison(
                    term,
                    domain=domain,
                    max_visits=budget,
                    engine=engine,
                    plan_tier=plan_tier,
                )
            )
        except BudgetExceeded:
            return None

    return _fold(population, (row_of(seed) for seed in seeds))


def survey_random_open(
    count: int = 100,
    depth: int = 4,
    seed_base: int = 0,
    domain: NumDomain | None = None,
    budget: int = DEFAULT_BUDGET,
    inputs: tuple[str, ...] = ("in0", "in1"),
    jobs: int | None = None,
    engine: str = "tree",
    plan_tier: str = "opt",
) -> SurveyResult:
    """Survey random programs with unknown numeric inputs.

    Free inputs are assumed ⊤, so conditional tests and arithmetic stay
    statically unknown — the population where branch joins and
    duplication actually bite.
    """
    import random as _random

    population = f"random-open(depth={depth})"
    seeds = range(seed_base, seed_base + count)
    if effective_jobs(jobs, count) > 1 and domain is None:
        rows = parallel_map(
            _survey_random_open_worker,
            [
                (seed, depth, inputs, budget, engine, plan_tier)
                for seed in seeds
            ],
            jobs=jobs,
        )
        return _fold(population, rows)

    domain = domain if domain is not None else ConstPropDomain()
    lattice = Lattice(domain)

    def row_of(seed: int) -> "SurveyRow | None":
        term = normalize(
            random_open_term(_random.Random(seed), depth, inputs)
        )
        initial = {
            name: lattice.of_num(domain.top)
            for name in free_variables(term)
        }
        try:
            return SurveyRow.from_report(
                run_comparison(
                    term,
                    domain=domain,
                    initial=initial,
                    max_visits=budget,
                    engine=engine,
                    plan_tier=plan_tier,
                )
            )
        except BudgetExceeded:
            return None

    return _fold(population, (row_of(seed) for seed in seeds))
