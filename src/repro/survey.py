"""Empirical survey: how often do the analyses actually differ?

The paper proves the direct and CPS analyses *can* differ in both
directions and argues the differences matter in practice.  This module
quantifies the phenomenon over program populations: it runs the
three-way analysis over the corpus and over seeded random programs and
tabulates the Section 5 verdicts, plus the relative analyzer costs.

``python -m repro survey --count 200`` prints the tabulation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.common import BudgetExceeded
from repro.analysis.compare import Precision
from repro.anf import normalize
from repro.api import run_three_way
from repro.corpus import PROGRAMS, CorpusProgram
from repro.domains.protocol import NumDomain
from repro.domains.absval import Lattice
from repro.domains.constprop import ConstPropDomain
from repro.gen import random_open_term, random_program
from repro.lang.syntax import free_variables, term_size

#: Default per-program analyzer work budget.  The syntactic-CPS
#: analyzer is worst-case super-exponential (Section 6.2 + false
#: returns); programs that blow past the budget are counted rather
#: than analyzed to completion.
DEFAULT_BUDGET = 200_000


@dataclass
class SurveyResult:
    """Aggregated verdicts and costs over a program population."""

    population: str
    count: int = 0
    direct_vs_syntactic: Counter = field(default_factory=Counter)
    semantic_vs_direct: Counter = field(default_factory=Counter)
    semantic_vs_syntactic: Counter = field(default_factory=Counter)
    direct_visits: int = 0
    semantic_visits: int = 0
    syntactic_visits: int = 0
    total_size: int = 0
    budget_exceeded: int = 0

    def record(self, report) -> None:
        """Fold one three-way report into the aggregate."""
        self.count += 1
        self.direct_vs_syntactic[report.direct_vs_syntactic.value] += 1
        self.semantic_vs_direct[report.semantic_vs_direct.value] += 1
        self.semantic_vs_syntactic[report.semantic_vs_syntactic.value] += 1
        self.direct_visits += report.direct.stats.visits
        self.semantic_visits += report.semantic.stats.visits
        self.syntactic_visits += report.syntactic.stats.visits
        self.total_size += term_size(report.term)

    def verdict_share(self, counter: Counter, verdict: Precision) -> float:
        """Fraction of the population with the given verdict."""
        if not self.count:
            return 0.0
        return counter[verdict.value] / self.count

    def summary(self) -> str:
        """A human-readable tabulation."""
        lines = [
            f"population: {self.population} "
            f"({self.count} programs analyzed, {self.budget_exceeded} "
            f"hit the work budget, avg size "
            f"{self.total_size / max(self.count, 1):.1f} nodes)",
            f"  mean analyzer visits: direct "
            f"{self.direct_visits / max(self.count, 1):.1f}, semantic-CPS "
            f"{self.semantic_visits / max(self.count, 1):.1f}, syntactic-CPS "
            f"{self.syntactic_visits / max(self.count, 1):.1f}",
        ]
        for label, counter in (
            ("direct vs syntactic-CPS", self.direct_vs_syntactic),
            ("semantic vs direct", self.semantic_vs_direct),
            ("semantic vs syntactic", self.semantic_vs_syntactic),
        ):
            shares = ", ".join(
                f"{verdict}: {count}" for verdict, count in counter.most_common()
            )
            lines.append(f"  {label:24} {shares}")
        return "\n".join(lines)


def survey_programs(
    programs: Iterable[CorpusProgram],
    population: str,
    domain: NumDomain | None = None,
    budget: int = DEFAULT_BUDGET,
) -> SurveyResult:
    """Survey an iterable of corpus programs."""
    result = SurveyResult(population)
    for program in programs:
        try:
            result.record(
                run_three_way(program, domain=domain, max_visits=budget)
            )
        except BudgetExceeded:
            result.budget_exceeded += 1
    return result


def survey_corpus(
    domain: NumDomain | None = None, budget: int = DEFAULT_BUDGET
) -> SurveyResult:
    """Survey the built-in corpus."""
    return survey_programs(PROGRAMS.values(), "corpus", domain, budget)


def survey_random(
    count: int = 100,
    depth: int = 4,
    seed_base: int = 0,
    domain: NumDomain | None = None,
    budget: int = DEFAULT_BUDGET,
) -> SurveyResult:
    """Survey ``count`` seeded random closed programs.

    Closed simply-typed programs fold completely under constant
    propagation, so all verdicts come out equal — included as the
    baseline population.  See :func:`survey_random_open` for the
    population where the paper's phenomena occur.
    """
    result = SurveyResult(f"random-closed(depth={depth})")
    for seed in range(seed_base, seed_base + count):
        term = normalize(random_program(seed, depth))
        try:
            result.record(
                run_three_way(term, domain=domain, max_visits=budget)
            )
        except BudgetExceeded:
            result.budget_exceeded += 1
    return result


def survey_random_open(
    count: int = 100,
    depth: int = 4,
    seed_base: int = 0,
    domain: NumDomain | None = None,
    budget: int = DEFAULT_BUDGET,
    inputs: tuple[str, ...] = ("in0", "in1"),
) -> SurveyResult:
    """Survey random programs with unknown numeric inputs.

    Free inputs are assumed ⊤, so conditional tests and arithmetic stay
    statically unknown — the population where branch joins and
    duplication actually bite.
    """
    import random as _random

    domain = domain if domain is not None else ConstPropDomain()
    lattice = Lattice(domain)
    result = SurveyResult(f"random-open(depth={depth})")
    for seed in range(seed_base, seed_base + count):
        term = normalize(
            random_open_term(_random.Random(seed), depth, inputs)
        )
        initial = {
            name: lattice.of_num(domain.top)
            for name in free_variables(term)
        }
        try:
            result.record(
                run_three_way(
                    term, domain=domain, initial=initial, max_visits=budget
                )
            )
        except BudgetExceeded:
            result.budget_exceeded += 1
    return result
