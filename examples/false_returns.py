#!/usr/bin/env python3
"""False returns (Theorem 5.1 / Section 6.1): the CPS transformation
can *destroy* static information.

The CPS transformation reifies continuations into values; a 0CFA-style
analysis must then collect, at each continuation variable, the set of
continuations flowing there — and every return ``(k W)`` applies all
of them.  Two call sites of the same procedure therefore get their
returns merged: an infeasible path.  Shivers observed the phenomenon
for his 0CFA ([16] p.33); Sabry & Felleisen's Theorem 5.1 pins it on
the CPS transformation itself.

Usage::

    python examples/false_returns.py
"""

from repro import Precision, THREE_WAY_ANALYZERS, run_comparison
from repro.corpus import SHIVERS_EXAMPLE, THEOREM_51_WITNESS
from repro.cps import cps_pretty
from repro.lang import pretty


def show(program) -> None:
    print(f"--- {program.name}: {program.description} ---")
    print(pretty(program.term))
    report = run_comparison(program, analyzers=THREE_WAY_ANALYZERS)
    print("\nCPS image:")
    print(cps_pretty(report.cps_term))

    print("\nWhat each analysis proves about a1 (bound to (f 1)):")
    print(f"  direct        : {report.direct.value_of('a1')!r}")
    print(f"  semantic-CPS  : {report.semantic.value_of('a1')!r}")
    print(f"  syntactic-CPS : {report.syntactic.value_of('a1')!r}")

    konts = report.syntactic.konts_of("k/x")
    print(
        f"\nContinuations collected at the identity's k-parameter: "
        f"{sorted(map(str, konts))}"
    )
    print(
        "Both call-site continuations flow to k/x, so the return of the\n"
        "first call is also fed into the second call's continuation —\n"
        "a path the direct interpreter can never take."
    )
    verdict = report.direct_vs_syntactic
    assert verdict is Precision.LEFT_MORE_PRECISE
    assert report.direct.constant_of("a1") == 1
    print(f"\nVerdict: {verdict.value} (the direct analysis wins)\n")


def main() -> None:
    show(THEOREM_51_WITNESS)
    show(SHIVERS_EXAMPLE)


if __name__ == "__main__":
    main()
