#!/usr/bin/env python3
"""Section 6.2: with a looping construct, the exact CPS analyses stop
being computable.

`loop` abbreviates ``x := 0; while true x := x + 1``: its exact
collecting semantics is the infinite set {0, 1, 2, ...}.  The direct
analyzer summarizes it as one lattice element (the join of all
naturals) and terminates.  The CPS analyzers must apply the
continuation to *every* natural and join the results — Sabry &
Felleisen adapt Kam & Ullman's argument to show that join is
undecidable.  This example makes the undecidability tangible: no
finite unrolling bound is ever safe, because a program can branch on a
threshold just above the bound.

Usage::

    python examples/loop_undecidable.py
"""

from repro.analysis import (
    NonComputableError,
    analyze_direct,
    analyze_semantic_cps,
)
from repro.corpus import loop_feeding_conditional
from repro.domains import ConstPropDomain
from repro.lang import pretty

DOMAIN = ConstPropDomain()


def main() -> None:
    program = loop_feeding_conditional(10)
    print("=== the program (threshold 10) ===")
    print(pretty(program.term))

    print("\n--- direct analysis (Figure 4) ---")
    direct = analyze_direct(program.term, DOMAIN)
    print(f"terminates immediately: i = {direct.value_of('i')!r}, "
          f"r = {direct.value_of('r')!r}")

    print("\n--- semantic-CPS analysis (Figure 5), faithful mode ---")
    try:
        analyze_semantic_cps(program.term, DOMAIN)
    except NonComputableError as error:
        print(f"raises NonComputableError:\n  {error}")

    print("\n--- 'top' mode: apply the continuation to the join of all "
          "naturals ---")
    top = analyze_semantic_cps(program.term, DOMAIN, loop_mode="top")
    print(f"r = {top.value_of('r')!r} (same as the direct analysis)")

    print("\n--- 'unroll' mode: the bound is never enough ---")
    print(f"{'bound':>6} {'r':>12}")
    for bound in (4, 8, 9, 10, 12, 20):
        unrolled = analyze_semantic_cps(
            program.term, DOMAIN, loop_mode="unroll", unroll_bound=bound
        )
        print(f"{bound:>6} {str(unrolled.value_of('r').num):>12}")
    print(
        "\nBelow the threshold every unrolled value takes the same branch\n"
        "and the analysis 'proves' r = 222; the moment the bound crosses\n"
        "the threshold the answer changes to TOP.  Since the threshold\n"
        "can be any program-computed number, no finite bound is sound —\n"
        "the exact semantic-CPS analysis is not a data flow algorithm."
    )


if __name__ == "__main__":
    main()
