#!/usr/bin/env python3
"""The compiler pipeline: source → ANF → (optionally CPS) → bytecode.

The paper opens with the question of CPS as a *compiler* intermediate
representation.  This walkthrough compiles one program down both
routes and runs the results on the same abstract machine:

- the **direct** back end emits calls that push return frames — the
  machine maintains the control stack;
- the **CPS** back end emits only jumps — its frame stack stays empty
  for the whole run, because the control context travels as
  continuation closures in the environment.

"The net effect of transforming the program to CPS is to obscure the
fact that there is only one control stack" (Section 6.3): the stack is
still there, reified in the heap.

Usage::

    python examples/compile_pipeline.py
"""

from repro.anf import normalize
from repro.corpus import corpus_program
from repro.cps import TOP_KVAR, cps_pretty, cps_transform
from repro.lang import parse, pretty
from repro.machine import compile_cps, compile_direct, run_code
from repro.machine.code import code_size

SOURCE = """
(let (fact (lambda (self)
             (lambda (n)
               (if0 n 1 (* n ((self self) (- n 1)))))))
  ((fact fact) 8))
"""


def show_code(code, indent="  ", depth=0):
    from repro.machine.code import Branch, BranchJump, Close, CloseF, CloseK

    for instr in code:
        print(f"{indent * (depth + 1)}{type(instr).__name__}"
              f"{_fields(instr)}")
        match instr:
            case Close(_, inner) | CloseK(_, inner):
                show_code(inner, indent, depth + 1)
            case CloseF(_, _, inner):
                show_code(inner, indent, depth + 1)
            case Branch(t, e) | BranchJump(t, e):
                show_code(t, indent, depth + 1)
                print(f"{indent * (depth + 1)}-- else --")
                show_code(e, indent, depth + 1)
            case _:
                pass


def _fields(instr):
    from dataclasses import fields

    simple = [
        f"{f.name}={getattr(instr, f.name)!r}"
        for f in fields(instr)
        if f.name not in ("code", "then_code", "else_code")
        and not isinstance(getattr(instr, f.name), tuple)
    ]
    return f"({', '.join(simple)})" if simple else ""


def main() -> None:
    term = normalize(parse(SOURCE))
    print("=== A-normal form ===")
    print(pretty(term))

    direct_code = compile_direct(term)
    cps_term = cps_transform(term)
    cps_code = compile_cps(cps_term)

    print(f"\n=== direct bytecode ({code_size(direct_code)} instrs) ===")
    show_code(direct_code[:12])
    print("  ...")

    print("\n=== CPS form ===")
    print(cps_pretty(cps_term, width=60))
    print(f"\n=== CPS bytecode ({code_size(cps_code)} instrs) ===")
    show_code(cps_code[:10])
    print("  ...")

    direct_value, direct_stats = run_code(direct_code)
    cps_value, cps_stats = run_code(cps_code, halt_kvar=TOP_KVAR)
    print("\n=== execution ===")
    print(f"direct back end: value {direct_value}, "
          f"{direct_stats.steps} steps, control stack depth "
          f"{direct_stats.max_frames}")
    print(f"CPS back end   : value {cps_value}, "
          f"{cps_stats.steps} steps, control stack depth "
          f"{cps_stats.max_frames}")
    assert direct_value == cps_value == 40320

    ack = corpus_program("ackermann").term
    _, d = run_code(compile_direct(ack), fuel=10_000_000)
    _, c = run_code(
        compile_cps(cps_transform(ack)), halt_kvar=TOP_KVAR, fuel=10_000_000
    )
    print(f"\nackermann A(2,3): direct stack depth {d.max_frames}, "
          f"CPS stack depth {c.max_frames}")
    print(
        "\nSame answers; the CPS route's control context lives in heap\n"
        "continuation closures instead of machine frames."
    )


if __name__ == "__main__":
    main()
