#!/usr/bin/env python3
"""Duplication (Theorem 5.2 / Section 6.2): the CPS transformation can
*create* static information — at a price.

A CPS-based analysis re-analyzes the continuation once per execution
path (per conditional branch, per abstract callee).  In a
non-distributive analysis such as constant propagation, that recovers
facts the direct analysis loses when it merges stores at a join point.
The same duplication makes the analysis exponentially expensive in the
worst case — this example measures that too.

Usage::

    python examples/duplication.py
"""

from repro import Precision, THREE_WAY_ANALYZERS, run_comparison
from repro.corpus import (
    THEOREM_52_CONDITIONAL,
    THEOREM_52_TWO_CLOSURES,
    conditional_chain,
)
from repro.lang import pretty


def show(program) -> None:
    print(f"--- {program.name}: {program.description} ---")
    print(pretty(program.term))
    report = run_comparison(program, analyzers=THREE_WAY_ANALYZERS)
    print("\nWhat each analysis proves about a2:")
    print(f"  direct        : {report.direct.value_of('a2')!r}")
    print(f"  semantic-CPS  : {report.semantic.value_of('a2')!r}")
    print(f"  syntactic-CPS : {report.syntactic.value_of('a2')!r}")
    assert report.direct_vs_syntactic is Precision.RIGHT_MORE_PRECISE
    print(f"\nVerdict: {report.direct_vs_syntactic.value} (the CPS analyses win)\n")


def cost_sweep() -> None:
    print("--- the price: exponential duplication cost (Section 6.2) ---")
    print("chains of k unknown conditionals; analyzer work in rule visits")
    print(f"{'k':>3} {'direct':>10} {'semantic-CPS':>14} {'syntactic-CPS':>15}")
    previous = None
    for k in range(1, 11):
        report = run_comparison(conditional_chain(k), analyzers=THREE_WAY_ANALYZERS)
        semantic = report.semantic.stats.visits
        ratio = f"  (x{semantic / previous:.2f})" if previous else ""
        previous = semantic
        print(
            f"{k:>3} {report.direct.stats.visits:>10} "
            f"{semantic:>14} "
            f"{report.syntactic.stats.visits:>15}{ratio}"
        )
    print(
        "\nThe direct analyzer's work grows linearly in k; the CPS\n"
        "analyzers' doubles with every conditional (they re-analyze the\n"
        "remaining chain once per path): ~3 * 2^k rule visits."
    )


def main() -> None:
    show(THEOREM_52_CONDITIONAL)
    show(THEOREM_52_TWO_CLOSURES)
    cost_sweep()


if __name__ == "__main__":
    main()
