#!/usr/bin/env python3
"""MOP vs MFP: the paper's story in the classical dataflow setting.

Section 6.2 cites Nielson: the semantic-CPS analysis computes the MOP
(merge over all paths) solution, the direct analysis the MFP (maximum
fixed point) solution.  This walkthrough runs the classical solvers of
`repro.dataflow` next to the interpreter-derived analyzers on the same
witness and shows the alignment — and what each costs.

Usage::

    python examples/mop_vs_mfp.py
"""

from repro.analysis import analyze_direct, analyze_semantic_cps
from repro.anf import normalize
from repro.corpus import conditional_chain
from repro.dataflow import PathExplosion, build_problem, solve_mfp, solve_mop
from repro.dataflow.mfp import mfp_value
from repro.dataflow.mop import mop_value
from repro.domains import ConstPropDomain, Lattice
from repro.lang import parse, pretty

DOMAIN = ConstPropDomain()

WITNESS = normalize(
    parse(
        """(let (a1 (if0 x 0 1))
             (let (a2 (if0 a1 (+ a1 3) (+ a1 2)))
               a2))"""
    ),
    ensure_unique=False,
)


def alignment() -> None:
    print("=== the Theorem 5.2 witness, four ways ===")
    print(pretty(WITNESS))
    lattice = Lattice(DOMAIN)
    initial = {"x": lattice.of_num(DOMAIN.top)}
    entry = {"x": DOMAIN.top}

    direct = analyze_direct(WITNESS, DOMAIN, initial=initial)
    semantic = analyze_semantic_cps(WITNESS, DOMAIN, initial=initial)
    problem = build_problem(WITNESS, DOMAIN, entry_facts=entry)
    mfp = solve_mfp(problem)
    mop = solve_mop(problem)

    print("\nwhat each computes for a2:")
    print(f"  classical MFP (Kildall)        : {mfp_value(problem, mfp, 'a2')}")
    print(f"  direct analyzer (Figure 4)     : {direct.num_of('a2')}")
    print(f"  classical MOP (path join)      : {mop_value(problem, mop, 'a2')}")
    print(f"  semantic-CPS analyzer (Fig. 5) : {semantic.num_of('a2')}")
    print(
        "\nMFP merges at the join and answers ⊤, exactly like the direct\n"
        "analyzer; MOP keeps paths apart and proves 3, exactly like the\n"
        "CPS-style analyzers — Nielson's correspondence, reproduced."
    )


def cost() -> None:
    print("\n=== what MOP costs (Section 6.2, classically) ===")
    print(f"{'k':>3} {'MFP points':>11} {'MOP paths':>10}")
    for k in (4, 8, 12, 16):
        program = conditional_chain(k)
        problem = build_problem(
            program.term,
            DOMAIN,
            entry_facts={f"x{i}": DOMAIN.top for i in range(1, k + 1)},
        )
        solve_mfp(problem)
        try:
            solve_mop(problem, max_paths=2**14)
            paths = f"{2 ** k}"
        except PathExplosion:
            paths = f"{2 ** k} (budget!)"
        print(f"{k:>3} {len(problem.points):>11} {paths:>10}")
    print(
        "\nMFP visits each point a bounded number of times; MOP enumerates\n"
        "2^k paths and, with loops in the graph, would not terminate at\n"
        "all — Kam & Ullman's undecidability, which Section 6.2\n"
        "transplants to the CPS analyses via the `loop` construct."
    )


def main() -> None:
    alignment()
    cost()


if __name__ == "__main__":
    main()
