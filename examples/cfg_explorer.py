#!/usr/bin/env python3
"""Control-flow graph explorer: build the call graph and flow graph of
a corpus program from the 0CFA results and print Graphviz DOT.

Usage::

    python examples/cfg_explorer.py [program-name]

Run with no argument to use the 'factorial' corpus program, or pass
any name from `repro.corpus.PROGRAMS`.
"""

import sys

from repro.analysis import analyze_direct
from repro.cfg import (
    build_call_graph,
    build_flow_graph,
    call_graph_to_dot,
    flow_graph_to_dot,
)
from repro.corpus import PROGRAMS, corpus_program
from repro.domains import ConstPropDomain, Lattice
from repro.lang import pretty


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "factorial"
    try:
        program = corpus_program(name)
    except KeyError:
        print(f"unknown program {name!r}; available: {sorted(PROGRAMS)}")
        raise SystemExit(1)

    domain = ConstPropDomain()
    initial = program.initial_for(Lattice(domain))
    result = analyze_direct(program.term, domain, initial=initial)

    print(f"=== {program.name}: {program.description} ===")
    print(pretty(program.term))

    call_graph = build_call_graph(program.term, result)
    print("\n=== call graph ===")
    for site in call_graph.sites:
        callees = sorted(call_graph.callees_of(site))
        marker = "" if call_graph.is_monomorphic(site) else "  [polymorphic]"
        print(f"  {site:10} -> {', '.join(callees) or '(unresolved)'}{marker}")
    dead = call_graph.unreachable_lambdas()
    if dead:
        print(f"  unreachable procedures: {sorted(dead)}")

    print("\n=== call graph (DOT) ===")
    print(call_graph_to_dot(call_graph, title=program.name))

    flow_graph = build_flow_graph(program.term, call_graph)
    print("\n=== flow graph (DOT) ===")
    print(flow_graph_to_dot(flow_graph, title=program.name))


if __name__ == "__main__":
    main()
