#!/usr/bin/env python3
"""Quickstart: parse a program, run all three data flow analyzers, and
inspect the facts they computed.

Usage::

    python examples/quickstart.py
"""

from repro import THREE_WAY_ANALYZERS, run_comparison
from repro.analysis import analyze_direct
from repro.anf import normalize
from repro.cfg import build_call_graph
from repro.cps import cps_pretty
from repro.lang import parse, pretty

SOURCE = """
(let (compose (lambda (f) (lambda (g) (lambda (x) (f (g x))))))
  (let (inc2 ((compose add1) add1))
    (let (six (inc2 4))
      (let (answer (* six 7))
        answer))))
"""


def main() -> None:
    term = normalize(parse(SOURCE))
    print("=== A-normal form ===")
    print(pretty(term))

    report = run_comparison(term, analyzers=THREE_WAY_ANALYZERS)
    print("\n=== CPS transform (Definition 3.2) ===")
    print(cps_pretty(report.cps_term))

    print("\n=== Three-way analysis (constant propagation x 0CFA) ===")
    print(report.summary())

    print("\n=== Per-variable facts (direct analyzer, Figure 4) ===")
    direct = report.direct
    for name in sorted(direct.variables()):
        value = direct.value_of(name)
        constant = direct.constant_of(name)
        suffix = f"   == constant {constant}" if constant is not None else ""
        print(f"  {name:10} {value!r}{suffix}")

    print("\n=== Call graph from the 0CFA closure sets ===")
    graph = build_call_graph(term, direct)
    for site in graph.sites:
        callees = ", ".join(sorted(graph.callees_of(site))) or "(unresolved)"
        print(f"  call at {site:8} -> {callees}")

    assert direct.constant_of("answer") == 42
    print("\nThe analysis proved: answer = 42")


if __name__ == "__main__":
    main()
