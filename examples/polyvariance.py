#!/usr/bin/env python3
"""Polyvariance vs duplication: what k-CFA can and cannot recover.

Shivers' k-CFA (the thesis the paper discusses for its 0CFA and
false-return example) adds call-string contexts to the direct
analyzer.  This walkthrough shows the separation:

- contexts repair *argument merging* across call sites (the classic
  monovariant weakness), but
- the Theorem 5.2 precision lives at *returns* (store joins at
  conditionals and multi-closure calls), which no context length
  splits — only duplication does, whether implicit (CPS analyses) or
  explicit (the Section 6.3 direct-style pass).

Usage::

    python examples/polyvariance.py
"""

from repro.analysis import (
    analyze_direct,
    analyze_polyvariant,
)
from repro.anf import normalize
from repro.corpus import THEOREM_52_CONDITIONAL
from repro.domains import ConstPropDomain, Lattice
from repro.lang import parse, pretty
from repro.opt import duplicate_join_continuations

DOMAIN = ConstPropDomain()
LATTICE = Lattice(DOMAIN)

REPEATED_CALLS = """
(let (f (lambda (x) (add1 x)))
  (let (u (f 1))
    (let (v (f 2))
      (+ u v))))
"""


def argument_merging() -> None:
    term = normalize(parse(REPEATED_CALLS))
    print("=== argument merging across call sites ===")
    print(pretty(term))
    mono = analyze_direct(term, DOMAIN)
    print(f"\n0CFA (Figure 4)  : result {mono.value!r} — x merged 1 u 2")
    for k in (1, 2):
        poly = analyze_polyvariant(term, DOMAIN, k=k)
        contexts = {
            "/".join(ctx) or "ε": str(val.num)
            for ctx, val in poly.contexts_of("x").items()
        }
        print(f"{k}-CFA            : result {poly.value!r} — x per context: "
              f"{contexts}")
    poly = analyze_polyvariant(term, DOMAIN, k=1)
    assert poly.value.num == 5


def return_merging() -> None:
    program = THEOREM_52_CONDITIONAL
    initial = program.initial_for(LATTICE)
    print("\n=== return merging at a conditional (Theorem 5.2) ===")
    print(pretty(program.term))
    print()
    for k in (0, 1, 2, 3):
        poly = analyze_polyvariant(
            program.term, DOMAIN, k=k, initial=initial
        )
        print(f"{k}-CFA            : a2 = {poly.value_of('a2')!r}")
    duplicated = duplicate_join_continuations(program.term)
    after = analyze_direct(duplicated, DOMAIN, initial=initial)
    print(f"duplication pass : a2-equivalent = {after.value!r}")
    assert after.value.num == 3
    print(
        "\nNo context length helps — the loss happens when the branch\n"
        "stores join at a2's binding, and contexts never split that\n"
        "join.  Duplicating the continuation (what the CPS analyses do\n"
        "implicitly) is the only lever, exactly as the paper argues."
    )


def main() -> None:
    argument_merging()
    return_merging()


if __name__ == "__main__":
    main()
