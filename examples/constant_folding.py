#!/usr/bin/env python3
"""An analysis client: constant folding, inlining, and the paper's
Section 6.3 program — "combine heuristic in-lining with a direct-style
analysis" instead of transforming to CPS.

The example optimizes a small program three ways and compares the
precision of the resulting direct analyses against the CPS analyses
of the original:

1. plain direct analysis (loses facts at joins),
2. direct analysis after heuristic inlining (Section 6.3),
3. direct analysis after bounded continuation duplication (the
   abstract's "some amount of duplication").

Usage::

    python examples/constant_folding.py
"""

from repro import THREE_WAY_ANALYZERS, run_comparison
from repro.analysis import analyze_direct
from repro.anf import normalize
from repro.corpus import THEOREM_52_CONDITIONAL
from repro.domains import ConstPropDomain, Lattice
from repro.lang import parse, pretty
from repro.opt import (
    duplicate_join_continuations,
    inline_monomorphic_calls,
    optimize,
)

DOMAIN = ConstPropDomain()

SOURCE = """
(let (double (lambda (x) (* x 2)))
  (let (a (double 10))
    (let (b (double 11))
      (let (c (if0 (- a 20) (+ a b) 0))
        c))))
"""


def pipeline_demo() -> None:
    term = normalize(parse(SOURCE))
    print("=== input ===")
    print(pretty(term))

    before = analyze_direct(term, DOMAIN)
    print(f"\nplain direct analysis result: {before.value!r}")
    print("(the second call to double merged x to TOP, so b and c are lost)")

    report = optimize(term, DOMAIN)
    print(f"\n=== after optimize() [{report.rounds} rounds] ===")
    print(pretty(report.term))
    print(f"optimized analysis result: {report.analysis.value!r}")
    assert report.analysis.value.num == 42
    print("inlining + folding + DCE proved the program returns 42")


def section_63_demo() -> None:
    program = THEOREM_52_CONDITIONAL
    lattice = Lattice(DOMAIN)
    initial = program.initial_for(lattice)

    print("\n=== Section 6.3: recovering CPS precision in direct style ===")
    print(pretty(program.term))
    cps_report = run_comparison(program, analyzers=THREE_WAY_ANALYZERS)
    plain = analyze_direct(program.term, DOMAIN, initial=initial)
    duplicated_term = duplicate_join_continuations(program.term)
    duplicated = analyze_direct(duplicated_term, DOMAIN, initial=initial)
    inlined_term = inline_monomorphic_calls(
        program.term, domain=DOMAIN, initial=initial
    )
    inlined = analyze_direct(inlined_term, DOMAIN, initial=initial)

    print(f"\n  plain direct analysis        : {plain.value!r}")
    print(f"  syntactic-CPS analysis       : {cps_report.syntactic.value!r}")
    print(f"  direct + continuation dup    : {duplicated.value!r}")
    print(f"  direct + heuristic inlining  : {inlined.value!r}")
    assert duplicated.value.num == cps_report.syntactic.value.num == 3
    print(
        "\nBounded duplication gives the direct analysis exactly the\n"
        "precision the CPS analyses obtain implicitly — no CPS transform\n"
        "required, and the duplication budget is explicit."
    )


def main() -> None:
    pipeline_demo()
    section_63_demo()


if __name__ == "__main__":
    main()
