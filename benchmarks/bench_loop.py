"""Experiment S6.2b: computability with the `loop` construct.

The direct analysis of a looping program terminates instantly with the
join of all naturals; the exact CPS analyses are not computable.  We
benchmark the computable sides and pin the computability facts: the
CPS analyzers raise by default, their 'top' fallback matches the
direct result, and no finite unrolling is stable across thresholds.
"""

import pytest

from repro.analysis import (
    NonComputableError,
    analyze_direct,
    analyze_semantic_cps,
    analyze_syntactic_cps,
)
from repro.corpus import loop_feeding_conditional
from repro.cps import cps_transform
from repro.domains import ConstPropDomain
from repro.domains.constprop import TOP

DOM = ConstPropDomain()


@pytest.mark.experiment("S6.2b")
def test_direct_analysis_of_loop(benchmark):
    program = loop_feeding_conditional(10)

    def run():
        return analyze_direct(program.term, DOM)

    result = benchmark(run)
    assert result.num_of("i") is TOP
    assert result.num_of("r") is TOP


@pytest.mark.experiment("S6.2b")
def test_cps_analyses_are_not_computable(benchmark):
    program = loop_feeding_conditional(10)
    cps_term = cps_transform(program.term)

    def run():
        raised = 0
        try:
            analyze_semantic_cps(program.term, DOM)
        except NonComputableError:
            raised += 1
        try:
            analyze_syntactic_cps(cps_term, DOM, check=False)
        except NonComputableError:
            raised += 1
        return raised

    assert benchmark(run) == 2


@pytest.mark.experiment("S6.2b")
def test_top_fallback_matches_direct(benchmark):
    program = loop_feeding_conditional(10)
    direct = analyze_direct(program.term, DOM)

    def run():
        return analyze_semantic_cps(program.term, DOM, loop_mode="top")

    result = benchmark(run)
    assert result.num_of("r") == direct.num_of("r")


@pytest.mark.experiment("S6.2b")
@pytest.mark.parametrize("bound", [8, 32, 128])
def test_unrolling_cost_grows_with_bound(benchmark, bound):
    program = loop_feeding_conditional(1_000_000)  # never crossed

    def run():
        return analyze_semantic_cps(
            program.term, DOM, loop_mode="unroll", unroll_bound=bound
        )

    result = benchmark(run)
    # every unrolled value is below the threshold: the analysis keeps
    # "proving" r = 222, no matter the bound — and a larger threshold
    # always exists (undecidability, experimentally)
    assert result.constant_of("r") == 222
    assert result.stats.visits >= bound
