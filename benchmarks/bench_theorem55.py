"""Experiment T5.5: semantic-CPS is at least as precise as
syntactic-CPS (δe(A1) ⊑ A2), with the strict gap on the false-return
witness.
"""

import pytest

from repro import Precision, THREE_WAY_ANALYZERS, run_comparison
from repro.analysis import analyze_semantic_cps, analyze_syntactic_cps
from repro.analysis.compare import compare_semantic_to_syntactic
from repro.analysis.delta import delta_store, delta_value
from repro.corpus import PROGRAMS, THEOREM_51_WITNESS
from repro.cps import cps_transform
from repro.domains import AbsStore, ConstPropDomain, Lattice

DOM = ConstPropDomain()
LAT = Lattice(DOM)


@pytest.mark.experiment("T5.5")
def test_value_inequality_over_corpus(benchmark):
    programs = [
        PROGRAMS[name]
        for name in sorted(PROGRAMS)
        if not PROGRAMS[name].heavy
    ]
    prepared = []
    for program in programs:
        initial = program.initial_for(LAT)
        cps_initial = dict(delta_store(AbsStore(LAT, initial)).items())
        prepared.append(
            (program.term, initial, cps_transform(program.term), cps_initial)
        )

    def run():
        count = 0
        for term, initial, cps_term, cps_initial in prepared:
            semantic = analyze_semantic_cps(term, DOM, initial=initial)
            syntactic = analyze_syntactic_cps(
                cps_term, DOM, initial=cps_initial, check=False
            )
            assert LAT.leq(delta_value(semantic.value), syntactic.value)
            count += 1
        return count

    assert benchmark(run) == len(prepared)


@pytest.mark.experiment("T5.5")
def test_strict_gap_on_false_return_witness(benchmark):
    def run():
        report = run_comparison(THEOREM_51_WITNESS, analyzers=THREE_WAY_ANALYZERS)
        assert report.semantic.constant_of("a1") == 1
        verdict = report.semantic_vs_syntactic
        assert verdict is Precision.LEFT_MORE_PRECISE
        return verdict

    benchmark(run)
