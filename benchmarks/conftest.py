"""Shared helpers for the benchmark harness.

Every module regenerates one row of the DESIGN.md experiment index;
dimension and verdict assertions run inside the benchmarked callables
so a timing row is only reported for a *correct* reproduction.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "experiment(id): paper artifact this benchmark regenerates"
    )
