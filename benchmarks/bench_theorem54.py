"""Experiment T5.4: semantic-CPS vs direct — the inequality always,
equality exactly for distributive analyses.

Regenerates the theorem over the corpus: with constant propagation
(non-distributive) the semantic analysis is at least as precise
everywhere and *strictly* better on the Theorem 5.2 witnesses; with
the unit domain (pure 0CFA, distributive) the two analyses coincide
on every program.
"""

import pytest

from repro import Precision
from repro.analysis import analyze_direct, analyze_semantic_cps
from repro.analysis.compare import compare_semantic_to_direct
from repro.corpus import (
    PROGRAMS,
    THEOREM_52_CONDITIONAL,
    THEOREM_52_TWO_CLOSURES,
)
from repro.domains import ConstPropDomain, Lattice, UnitDomain

#: Cut-free corpus subset (the theorem's exact scope; see DESIGN.md).
WORKLOADS = [
    name
    for name in sorted(PROGRAMS)
    if name not in ("factorial", "even-odd") and not PROGRAMS[name].heavy
]


def verdicts(domain):
    lattice = Lattice(domain)
    out = {}
    for name in WORKLOADS:
        program = PROGRAMS[name]
        initial = program.initial_for(lattice)
        direct = analyze_direct(program.term, domain, initial=initial)
        semantic = analyze_semantic_cps(
            program.term, domain, initial=initial
        )
        out[name] = compare_semantic_to_direct(semantic, direct)
    return out


@pytest.mark.experiment("T5.4")
def test_nondistributive_constprop(benchmark):
    def run():
        results = verdicts(ConstPropDomain())
        # inequality direction everywhere
        assert all(
            v in (Precision.EQUAL, Precision.LEFT_MORE_PRECISE)
            for v in results.values()
        ), results
        # strict gain on the duplication witnesses
        assert (
            results[THEOREM_52_CONDITIONAL.name]
            is Precision.LEFT_MORE_PRECISE
        )
        assert (
            results[THEOREM_52_TWO_CLOSURES.name]
            is Precision.LEFT_MORE_PRECISE
        )
        return results

    benchmark(run)


@pytest.mark.experiment("T5.4")
def test_distributive_unit_domain(benchmark):
    def run():
        results = verdicts(UnitDomain())
        # distributivity: exact agreement on every program
        assert all(v is Precision.EQUAL for v in results.values()), results
        return results

    benchmark(run)
