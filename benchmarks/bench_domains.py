"""Ablation: analyzer cost and behaviour across number domains.

The analyzers are parametric in the finite-height number domain
(DESIGN.md §4).  This benchmark measures what the choice costs on the
recursive `factorial` workload — richer domains mean longer ascending
chains before the Section 4.4 loop detection stabilizes — and pins
the expected precision ordering on a straight-line workload.
"""

import pytest

from repro.analysis import analyze_direct
from repro.corpus import corpus_program
from repro.domains import (
    ConstPropDomain,
    IntervalDomain,
    ParityDomain,
    SignDomain,
    UnitDomain,
)

DOMAINS = {
    "unit": UnitDomain(),
    "parity": ParityDomain(),
    "sign": SignDomain(),
    "constprop": ConstPropDomain(),
    "interval16": IntervalDomain(bound=16),
}


@pytest.mark.experiment("domains-ablation")
@pytest.mark.parametrize("name", sorted(DOMAINS))
def test_direct_analysis_cost_on_factorial(benchmark, name):
    domain = DOMAINS[name]
    term = corpus_program("factorial").term

    def run():
        return analyze_direct(term, domain)

    result = benchmark(run)
    assert result.stats.loop_cuts >= 1  # recursion was cut, not unrolled


@pytest.mark.experiment("domains-ablation")
def test_interval_chains_cost_more_than_flat_domains(benchmark):
    """Finite-height is not constant-height: the bounded-interval
    domain ascends through many more stores before stabilizing."""
    term = corpus_program("factorial").term

    def run():
        flat = analyze_direct(term, ConstPropDomain())
        rich = analyze_direct(term, IntervalDomain(bound=16))
        assert rich.stats.visits > flat.stats.visits
        return flat.stats.visits, rich.stats.visits

    benchmark(run)


@pytest.mark.experiment("domains-ablation")
def test_precision_ordering_on_straight_line_code(benchmark):
    """constprop proves the exact constant; parity/sign prove their
    projections; unit only reachability."""
    term = corpus_program("constants").term  # c = (3*3) - 4 = 5

    def run():
        results = {
            name: analyze_direct(term, domain)
            for name, domain in DOMAINS.items()
        }
        assert results["constprop"].constant_of("c") == 5
        from repro.domains.parity import ODD
        from repro.domains.sign import POS
        from repro.domains.unit import UNIT_TOP
        from repro.domains.interval import Interval

        assert results["parity"].num_of("c") is ODD
        assert results["sign"].num_of("b") is POS  # 3*3 > 0
        # sign cannot decide pos - pos: c = b - 4 is TOP there
        from repro.domains.sign import SIGN_TOP

        assert results["sign"].num_of("c") is SIGN_TOP
        assert results["unit"].num_of("c") is UNIT_TOP
        assert results["interval16"].num_of("c") == Interval(5, 5)
        return results

    benchmark(run)
