"""Experiment perf-ablation: the `repro.perf` cache stack.

Not a paper artifact — an engineering regression guard.  Three rungs
of the cache ladder (everything off; interning + join memo; full eval
memo) are timed on the Section 6.2 blowup workloads, with the
cached-vs-uncached answer equality asserted inside every benchmarked
callable so a timing row is only reported for a *correct* run.

The headline: on ``top_conditional_chain`` the eval memo turns the
2^k duplicated-path walk into an O(k) one, so the ``cache_full`` row
must beat ``cache_off`` by orders of magnitude.  The JSON regression
artifact (thresholds, survey timings) is produced by ``python -m
repro bench``; this file hooks the same workloads into the
pytest-benchmark harness.
"""

import pytest

from repro.analysis.semantic_cps import SemanticCpsAnalyzer
from repro.corpus import (
    corpus_program,
    top_conditional_chain,
)
from repro.dataflow import build_problem, solve_mfp
from repro.domains import ConstPropDomain, Lattice

DOM = ConstPropDomain()
LAT = Lattice(DOM)

CONFIGS = {
    "cache_off": False,
    "cache_default": None,  # interning + join memo only
    "cache_full": True,  # + the eval memo
}


def _run_semantic(program, cache, expected):
    analyzer = SemanticCpsAnalyzer(
        program.term,
        initial=program.initial_for(LAT),
        loop_mode="top",
        cache=cache,
    )
    result = analyzer.run()
    if expected is not None:
        assert result.answer == expected.answer
    return result


@pytest.mark.experiment("perf-ablation")
@pytest.mark.parametrize("config", CONFIGS)
def test_eval_memo_on_blowup_family(benchmark, config):
    # k=10: ~2^10 duplicated paths uncached, ~linear with the memo.
    program = top_conditional_chain(10)
    expected = _run_semantic(program, False, None)

    result = benchmark(
        lambda: _run_semantic(program, CONFIGS[config], expected)
    )
    if config == "cache_full":
        assert result.stats.visits < 100


@pytest.mark.experiment("perf-ablation")
@pytest.mark.parametrize("config", CONFIGS)
@pytest.mark.parametrize("name", ["factorial", "church-pairs"])
def test_cache_stack_on_corpus(benchmark, config, name):
    program = corpus_program(name)
    expected = _run_semantic(program, False, None)

    benchmark(lambda: _run_semantic(program, CONFIGS[config], expected))


@pytest.mark.experiment("perf-ablation")
@pytest.mark.parametrize("cache", [False, True], ids=["off", "memo"])
def test_mfp_join_memo(benchmark, cache):
    from repro.anf import normalize
    from repro.lang.parser import parse

    term = normalize(
        parse(
            "(let (a1 (if0 x 0 1))"
            " (let (a2 (if0 a1 (+ a1 3) (+ a1 2))) a2))"
        ),
        ensure_unique=False,
    )
    problem = build_problem(term, DOM, entry_facts={"x": DOM.top})
    expected = solve_mfp(problem)

    def run():
        solution = solve_mfp(problem, cache=cache)
        assert solution == expected
        return solution

    benchmark(run)
