"""Ablation (extension): the two compiler back ends.

Compares the direct (frame-pushing) and CPS (stackless, heap
continuations) back ends on the corpus workloads: both must compute
the same answers; the CPS route trades control-stack frames for
environment-held continuation closures, typically executing more
machine steps for the same program.
"""

import pytest

from repro.corpus import corpus_program
from repro.cps import TOP_KVAR, cps_transform
from repro.machine import compile_cps, compile_direct, run_code
from repro.machine.code import code_size

WORKLOADS = ["factorial", "even-odd", "church", "higher-order"]


@pytest.mark.experiment("machine-ablation")
@pytest.mark.parametrize("name", WORKLOADS)
def test_direct_back_end(benchmark, name):
    term = corpus_program(name).term
    code = compile_direct(term)

    def run():
        return run_code(code, fuel=10_000_000)

    value, stats = benchmark(run)
    assert stats.max_frames >= 1  # the control stack is real


@pytest.mark.experiment("machine-ablation")
@pytest.mark.parametrize("name", WORKLOADS)
def test_cps_back_end(benchmark, name):
    term = corpus_program(name).term
    code = compile_cps(cps_transform(term))

    def run():
        return run_code(code, halt_kvar=TOP_KVAR, fuel=10_000_000)

    value, stats = benchmark(run)
    assert stats.max_frames == 0  # ... and here it lives in the heap


@pytest.mark.experiment("machine-ablation")
def test_back_ends_agree_and_compare_costs(benchmark):
    def run():
        rows = []
        for name in WORKLOADS:
            term = corpus_program(name).term
            direct_value, direct_stats = run_code(
                compile_direct(term), fuel=10_000_000
            )
            cps_code = compile_cps(cps_transform(term))
            cps_value, cps_stats = run_code(
                cps_code, halt_kvar=TOP_KVAR, fuel=10_000_000
            )
            if isinstance(direct_value, int):
                assert direct_value == cps_value
            rows.append(
                (
                    name,
                    direct_stats.steps,
                    cps_stats.steps,
                    code_size(compile_direct(term)),
                    code_size(cps_code),
                )
            )
        return rows

    benchmark(run)
