"""Experiments L3.1 and L3.3: differential checks of the interpreter
equivalences, over the corpus plus a deterministic batch of random
programs.  The benchmarked callable performs the full check — an
iteration only counts if every program agreed.
"""

import random

import pytest

from repro.anf import normalize
from repro.corpus import PROGRAMS
from repro.cps import cps_transform
from repro.gen import random_closed_term
from repro.interp import (
    answers_delta_related,
    run_direct,
    run_semantic_cps,
    run_syntactic_cps,
)
from repro.interp.values import Closure
from repro.lang.syntax import free_variables

RANDOM_BATCH = 50


def _closed_corpus_terms():
    # concrete interpretation handles every corpus program, including
    # the analyzer-heavy ones
    return [
        p.term for p in PROGRAMS.values() if not free_variables(p.term)
    ]


def _random_terms():
    return [
        normalize(random_closed_term(random.Random(seed), 4))
        for seed in range(RANDOM_BATCH)
    ]


def _agree(left, right) -> bool:
    if isinstance(left, Closure) and isinstance(right, Closure):
        return left.param == right.param and left.body == right.body
    return left == right


@pytest.mark.experiment("L3.1")
def test_lemma31_direct_vs_semantic(benchmark):
    terms = _closed_corpus_terms() + _random_terms()

    def check():
        count = 0
        for term in terms:
            direct = run_direct(term, fuel=1_000_000)
            semantic = run_semantic_cps(term, fuel=1_000_000)
            assert _agree(direct.value, semantic.value)
            count += 1
        return count

    assert benchmark(check) == len(terms)


@pytest.mark.experiment("L3.3")
def test_lemma33_semantic_vs_syntactic(benchmark):
    terms = _closed_corpus_terms() + _random_terms()
    transformed = [(term, cps_transform(term)) for term in terms]

    def check():
        count = 0
        for term, cps_term in transformed:
            semantic = run_semantic_cps(term, fuel=1_000_000)
            cps_answer = run_syntactic_cps(
                cps_term, fuel=4_000_000, check=False
            )
            assert answers_delta_related(semantic, cps_answer)
            count += 1
        return count

    assert benchmark(check) == len(transformed)
