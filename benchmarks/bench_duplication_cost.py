"""Experiment S6.2a: the exponential cost of duplication.

The Section 6.2 claim: "at each conditional and at each call site, the
continuation may be duplicated along each of the possible paths, at an
overall exponential cost in the analysis."

Two workload families regenerate the effect:

- ``conditional_chain(k)`` — k independent unknown conditionals; the
  CPS analyzers visit ~3 * 2^k rules while the direct analyzer's work
  is linear in k;
- ``call_site_chain(k)`` — k calls of a two-closure function; the
  syntactic-CPS analyzer additionally suffers false-return blowup
  (every return applies every collected continuation), so it grows
  even faster than 2^k.

The benchmark timings are the figure's series; the visit-count
assertions inside the callables pin the asymptotic *shape*.
"""

import pytest

from repro.analysis import (
    analyze_direct,
    analyze_semantic_cps,
    analyze_syntactic_cps,
)
from repro.analysis.delta import delta_store
from repro.corpus import call_site_chain, conditional_chain
from repro.cps import cps_transform
from repro.domains import AbsStore, ConstPropDomain, Lattice

DOM = ConstPropDomain()
LAT = Lattice(DOM)

CHAIN_LENGTHS = [2, 4, 6, 8, 10]


def _prepare(program):
    initial = program.initial_for(LAT)
    cps_term = cps_transform(program.term)
    cps_initial = dict(delta_store(AbsStore(LAT, initial)).items())
    return program.term, initial, cps_term, cps_initial


@pytest.mark.experiment("S6.2a")
@pytest.mark.parametrize("k", CHAIN_LENGTHS)
def test_conditional_chain_direct(benchmark, k):
    term, initial, _, _ = _prepare(conditional_chain(k))

    def run():
        return analyze_direct(term, DOM, initial=initial)

    result = benchmark(run)
    # linear shape: 5k - 1 rule visits
    assert result.stats.visits == 5 * k - 1


@pytest.mark.experiment("S6.2a")
@pytest.mark.parametrize("k", CHAIN_LENGTHS)
def test_conditional_chain_semantic_cps(benchmark, k):
    term, initial, _, _ = _prepare(conditional_chain(k))

    def run():
        return analyze_semantic_cps(term, DOM, initial=initial)

    result = benchmark(run)
    # exponential shape: 3 * 2^k - 2^(k-1) - 3 = visits; pin >= 2^k
    assert result.stats.visits >= 2**k


@pytest.mark.experiment("S6.2a")
@pytest.mark.parametrize("k", CHAIN_LENGTHS)
def test_conditional_chain_syntactic_cps(benchmark, k):
    _, _, cps_term, cps_initial = _prepare(conditional_chain(k))

    def run():
        return analyze_syntactic_cps(
            cps_term, DOM, initial=cps_initial, check=False
        )

    result = benchmark(run)
    assert result.stats.visits >= 2**k


@pytest.mark.experiment("S6.2a")
@pytest.mark.parametrize("k", [1, 2, 3, 4])
def test_call_site_chain_all_three(benchmark, k):
    program = call_site_chain(k)
    term, initial, cps_term, cps_initial = _prepare(program)

    def run():
        direct = analyze_direct(term, DOM, initial=initial)
        semantic = analyze_semantic_cps(term, DOM, initial=initial)
        syntactic = analyze_syntactic_cps(
            cps_term, DOM, initial=cps_initial, check=False
        )
        return direct, semantic, syntactic

    if k >= 4:
        # the k=4 syntactic analysis alone is ~70k rule visits
        # (super-exponential false-return blowup): measure it once
        direct, semantic, syntactic = benchmark.pedantic(
            run, rounds=1, iterations=1
        )
    else:
        direct, semantic, syntactic = benchmark(run)
    assert direct.stats.visits <= 3 * k + 2  # linear
    assert semantic.stats.visits >= 2**k  # duplication
    # false returns compound the duplication
    assert syntactic.stats.visits >= semantic.stats.visits


@pytest.mark.experiment("S6.2a")
def test_growth_ratio_shape(benchmark):
    """One callable computing the whole series, so the doubling ratio
    is asserted as a unit: semantic visits roughly double per k while
    direct visits grow by a constant."""

    def run():
        semantic_series = []
        direct_series = []
        for k in CHAIN_LENGTHS:
            program = conditional_chain(k)
            initial = program.initial_for(LAT)
            direct_series.append(
                analyze_direct(program.term, DOM, initial=initial).stats.visits
            )
            semantic_series.append(
                analyze_semantic_cps(
                    program.term, DOM, initial=initial
                ).stats.visits
            )
        for left, right in zip(semantic_series, semantic_series[1:]):
            ratio = right / left
            assert 3.5 < ratio < 5.5  # k advances by 2: ~4x per step
        for left, right in zip(direct_series, direct_series[1:]):
            assert right - left == 10  # 5 visits per conditional, k += 2
        return direct_series, semantic_series

    benchmark(run)
