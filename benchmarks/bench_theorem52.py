"""Experiment T5.2: syntactic-CPS analysis strictly beats the direct
analysis on the duplication witnesses.

Regenerates both proof cases: the conditional join (CPS proves
a2 = 3) and the two-closure call (CPS proves a2 = 5), plus the
combined incomparability statement of Theorems 5.1 + 5.2.
"""

import pytest

from repro import Precision, THREE_WAY_ANALYZERS, run_comparison
from repro.corpus import (
    THEOREM_51_WITNESS,
    THEOREM_52_CONDITIONAL,
    THEOREM_52_TWO_CLOSURES,
)
from repro.domains.constprop import TOP

EXPECTED_CONSTANT = {
    THEOREM_52_CONDITIONAL.name: 3,
    THEOREM_52_TWO_CLOSURES.name: 5,
}


@pytest.mark.experiment("T5.2")
@pytest.mark.parametrize(
    "program",
    [THEOREM_52_CONDITIONAL, THEOREM_52_TWO_CLOSURES],
    ids=lambda p: p.name,
)
def test_duplication_witness(benchmark, program):
    expected = EXPECTED_CONSTANT[program.name]

    def run():
        report = run_comparison(program, analyzers=THREE_WAY_ANALYZERS)
        # paper rows: the direct analysis loses a2 entirely ...
        assert report.direct.num_of("a2") is TOP
        # ... while both CPS-style analyses prove the constant
        assert report.syntactic.constant_of("a2") == expected
        assert report.semantic.constant_of("a2") == expected
        assert (
            report.direct_vs_syntactic is Precision.RIGHT_MORE_PRECISE
        )
        return report

    benchmark(run)


@pytest.mark.experiment("T5.2")
def test_incomparability(benchmark):
    """Theorems 5.1 + 5.2 combined: translation to CPS may increase or
    decrease static information."""

    def run():
        gain = run_comparison(THEOREM_52_CONDITIONAL, analyzers=THREE_WAY_ANALYZERS).direct_vs_syntactic
        loss = run_comparison(THEOREM_51_WITNESS, analyzers=THREE_WAY_ANALYZERS).direct_vs_syntactic
        assert gain is Precision.RIGHT_MORE_PRECISE
        assert loss is Precision.LEFT_MORE_PRECISE
        return gain, loss

    benchmark(run)
