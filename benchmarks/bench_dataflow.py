"""Ablation (extension): classical MFP vs MOP solvers.

Connects the paper to the Kam–Ullman/Nielson tradition it cites:
MFP (worklist, merges at joins — the direct analyzer's behaviour)
stays linear in the number of conditionals; MOP (per-path enumeration
— the CPS analyzers' behaviour) pays the exponential path count for
its extra precision, and a path budget is the only way to bound it.
"""

import pytest

from repro.corpus import conditional_chain
from repro.dataflow import PathExplosion, build_problem, solve_mfp, solve_mop
from repro.dataflow.mfp import mfp_value
from repro.dataflow.mop import mop_value
from repro.domains import ConstPropDomain
from repro.domains.constprop import TOP

DOM = ConstPropDomain()


def _problem(k: int):
    program = conditional_chain(k)
    return build_problem(
        program.term,
        DOM,
        entry_facts={f"x{i}": DOM.top for i in range(1, k + 1)},
    )


@pytest.mark.experiment("dataflow-ablation")
@pytest.mark.parametrize("k", [2, 6, 10, 14])
def test_mfp_scales_linearly(benchmark, k):
    problem = _problem(k)

    def run():
        return solve_mfp(problem)

    solution = benchmark(run)
    assert solution[problem.exit_point] is not None


@pytest.mark.experiment("dataflow-ablation")
@pytest.mark.parametrize("k", [2, 6, 10, 14])
def test_mop_pays_exponential_paths(benchmark, k):
    problem = _problem(k)

    def run():
        return solve_mop(problem, max_paths=1_000_000)

    solution = benchmark(run)
    assert solution[problem.exit_point] is not None


@pytest.mark.experiment("dataflow-ablation")
def test_mop_budget_is_the_only_bound(benchmark):
    problem = _problem(18)  # 2^18 paths

    def run():
        try:
            solve_mop(problem, max_paths=10_000)
        except PathExplosion as error:
            return error
        raise AssertionError("expected a path explosion")

    error = benchmark(run)
    assert isinstance(error, PathExplosion)


@pytest.mark.experiment("dataflow-ablation")
def test_precision_split_on_witness(benchmark):
    from repro.anf import normalize
    from repro.lang.parser import parse

    term = normalize(
        parse(
            """(let (a1 (if0 x 0 1))
                 (let (a2 (if0 a1 (+ a1 3) (+ a1 2)))
                   a2))"""
        ),
        ensure_unique=False,
    )
    problem = build_problem(term, DOM, entry_facts={"x": DOM.top})

    def run():
        mfp = solve_mfp(problem)
        mop = solve_mop(problem)
        assert mfp_value(problem, mfp, "a2") is TOP
        assert mop_value(problem, mop, "a2") == 3
        return mfp, mop

    benchmark(run)
