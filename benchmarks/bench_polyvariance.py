"""Ablation (extension): polyvariance vs duplication.

Shivers-style k-CFA is the other classic route to more precision
without a CPS transform.  This benchmark pins the separation the paper
implies: call-string contexts repair monovariant *argument* merging,
but the Theorem 5.2 gain lives at *returns*, which only duplication
(CPS-implicit or the Section 6.3 direct-style pass) recovers.
"""

import pytest

from repro.analysis import (
    analyze_direct,
    analyze_polyvariant,
)
from repro.anf import normalize
from repro.corpus import THEOREM_52_CONDITIONAL
from repro.domains import ConstPropDomain, Lattice
from repro.domains.constprop import TOP
from repro.lang.parser import parse
from repro.opt import duplicate_join_continuations

DOM = ConstPropDomain()
LAT = Lattice(DOM)

REPEATED_CALLS = normalize(
    parse(
        """(let (f (lambda (x) (add1 x)))
             (let (u (f 1)) (let (v (f 2)) (+ u v))))"""
    )
)


@pytest.mark.experiment("S6.3-ablation")
@pytest.mark.parametrize("k", [0, 1, 2])
def test_kcfa_on_repeated_calls(benchmark, k):
    def run():
        return analyze_polyvariant(REPEATED_CALLS, DOM, k=k)

    result = benchmark(run)
    if k == 0:
        assert result.value.num is TOP  # monovariant merging
    else:
        assert result.value.num == 5  # contexts split the argument


@pytest.mark.experiment("S6.3-ablation")
@pytest.mark.parametrize("k", [0, 1, 2, 3])
def test_kcfa_cannot_recover_duplication_gain(benchmark, k):
    program = THEOREM_52_CONDITIONAL
    initial = program.initial_for(LAT)

    def run():
        return analyze_polyvariant(
            program.term, DOM, k=k, initial=initial
        )

    result = benchmark(run)
    # no context length recovers a2 = 3; only duplication does
    assert result.value_of("a2").num is TOP


@pytest.mark.experiment("S6.3-ablation")
def test_duplication_succeeds_where_kcfa_fails(benchmark):
    program = THEOREM_52_CONDITIONAL
    initial = program.initial_for(LAT)

    def run():
        duplicated = duplicate_join_continuations(program.term)
        return analyze_direct(duplicated, DOM, initial=initial)

    result = benchmark(run)
    assert result.value.num == 3
