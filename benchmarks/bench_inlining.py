"""Experiment S6.3: the paper's practical alternative.

Section 6.3 / abstract: instead of transforming to CPS, combine a
direct-style analysis with heuristic inlining and "some amount of
duplication".  We regenerate that comparison on the Theorem 5.2
witnesses and an inlining workload:

- plain direct analysis (baseline, loses the facts),
- syntactic-CPS analysis (the paper's implicit-duplication route),
- direct analysis after bounded continuation duplication,
- direct analysis after heuristic inlining.

The assertions pin the headline: duplication + direct matches the CPS
precision; the benchmark compares what each route costs.
"""

import pytest

from repro import THREE_WAY_ANALYZERS, run_comparison
from repro.analysis import analyze_direct, analyze_syntactic_cps
from repro.analysis.delta import delta_store
from repro.anf import normalize
from repro.corpus import THEOREM_52_CONDITIONAL, conditional_chain
from repro.cps import cps_transform
from repro.domains import AbsStore, ConstPropDomain, Lattice
from repro.domains.constprop import TOP
from repro.lang.parser import parse
from repro.opt import (
    duplicate_join_continuations,
    inline_monomorphic_calls,
    optimize,
)

DOM = ConstPropDomain()
LAT = Lattice(DOM)

INLINE_SOURCE = """(let (f (lambda (x) (add1 x)))
                     (let (u (f 1)) (let (v (f 2)) (+ u v))))"""


@pytest.mark.experiment("S6.3")
def test_plain_direct_baseline(benchmark):
    program = THEOREM_52_CONDITIONAL
    initial = program.initial_for(LAT)

    def run():
        return analyze_direct(program.term, DOM, initial=initial)

    result = benchmark(run)
    assert result.num_of("a2") is TOP  # the baseline loses the fact


@pytest.mark.experiment("S6.3")
def test_cps_route(benchmark):
    program = THEOREM_52_CONDITIONAL
    initial = program.initial_for(LAT)
    cps_term = cps_transform(program.term)
    cps_initial = dict(delta_store(AbsStore(LAT, initial)).items())

    def run():
        return analyze_syntactic_cps(
            cps_term, DOM, initial=cps_initial, check=False
        )

    result = benchmark(run)
    assert result.constant_of("a2") == 3


@pytest.mark.experiment("S6.3")
def test_duplication_plus_direct_route(benchmark):
    program = THEOREM_52_CONDITIONAL
    initial = program.initial_for(LAT)

    def run():
        duplicated = duplicate_join_continuations(program.term)
        return analyze_direct(duplicated, DOM, initial=initial)

    result = benchmark(run)
    # the abstract's claim: as satisfactory as the CPS analysis
    assert result.value.num == 3


@pytest.mark.experiment("S6.3")
def test_inlining_plus_direct_route(benchmark):
    term = normalize(parse(INLINE_SOURCE))
    baseline = analyze_direct(term, DOM)
    assert baseline.value.num is TOP

    def run():
        inlined = inline_monomorphic_calls(term)
        return analyze_direct(inlined, DOM)

    result = benchmark(run)
    assert result.value.num == 5  # the CPS-grade fact, direct style


@pytest.mark.experiment("S6.3")
def test_full_pipeline(benchmark):
    term = normalize(parse(INLINE_SOURCE))

    def run():
        return optimize(term, DOM)

    report = benchmark(run)
    assert report.analysis.value.num == 5


@pytest.mark.experiment("S6.3")
def test_bounded_duplication_controls_cost(benchmark):
    """Duplication in direct style has an explicit budget: with the
    budget exhausted the analysis stays linear (and merely less
    precise), whereas the CPS analyses always pay the full 2^k."""
    program = conditional_chain(10)
    initial = program.initial_for(LAT)

    def run():
        limited = duplicate_join_continuations(program.term, max_size=12)
        return analyze_direct(limited, DOM, initial=initial)

    result = benchmark(run)
    # far below the ~6000 rule visits of the CPS analyzers at k=10
    assert result.stats.visits < 1000
