"""Experiment T5.1: direct analysis strictly beats syntactic-CPS on
the false-return witnesses.

Regenerates the content of the Theorem 5.1 proof: the per-variable
rows (direct proves a1 = 1; the CPS analysis answers TOP for both)
and the overall verdict, and times the two analyses.
"""

import pytest

from repro import Precision, THREE_WAY_ANALYZERS, run_comparison
from repro.analysis import analyze_direct, analyze_syntactic_cps
from repro.analysis.compare import compare_direct_to_cps
from repro.analysis.delta import delta_store
from repro.corpus import SHIVERS_EXAMPLE, THEOREM_51_WITNESS
from repro.cps import cps_transform
from repro.domains import AbsStore, ConstPropDomain, Lattice
from repro.domains.constprop import TOP

DOM = ConstPropDomain()
LAT = Lattice(DOM)


@pytest.mark.experiment("T5.1")
def test_direct_side_of_witness(benchmark):
    program = THEOREM_51_WITNESS
    initial = program.initial_for(LAT)

    def run():
        return analyze_direct(program.term, DOM, initial=initial)

    result = benchmark(run)
    # paper: the direct analysis determines a1 is the constant 1
    assert result.constant_of("a1") == 1
    assert result.num_of("a2") is TOP


@pytest.mark.experiment("T5.1")
def test_syntactic_cps_side_of_witness(benchmark):
    program = THEOREM_51_WITNESS
    initial = program.initial_for(LAT)
    cps_term = cps_transform(program.term)
    cps_initial = dict(delta_store(AbsStore(LAT, initial)).items())

    def run():
        return analyze_syntactic_cps(
            cps_term, DOM, initial=cps_initial, check=False
        )

    result = benchmark(run)
    # paper: the CPS analysis fails to produce any information about a1
    assert result.num_of("a1") is TOP
    assert result.num_of("a2") is TOP


@pytest.mark.experiment("T5.1")
@pytest.mark.parametrize(
    "program", [THEOREM_51_WITNESS, SHIVERS_EXAMPLE], ids=lambda p: p.name
)
def test_verdict(benchmark, program):
    def run():
        report = run_comparison(program, analyzers=THREE_WAY_ANALYZERS)
        verdict = report.direct_vs_syntactic
        assert verdict is Precision.LEFT_MORE_PRECISE
        return verdict

    assert benchmark(run) is Precision.LEFT_MORE_PRECISE
