"""Experiments F1-F3: the three concrete interpreters (Figures 1-3).

The paper has no interpreter timing table; these benchmarks establish
that the three machines implement the same semantics (Lemmas 3.1/3.3
checked inside the benchmarked callable) and record their relative
throughput on the corpus workloads.
"""

import pytest

from repro.corpus import corpus_program
from repro.cps import cps_transform
from repro.interp import (
    answers_delta_related,
    run_direct,
    run_semantic_cps,
    run_syntactic_cps,
)

WORKLOADS = ["factorial", "even-odd", "church", "higher-order"]


@pytest.mark.experiment("F1")
@pytest.mark.parametrize("name", WORKLOADS)
def test_direct_interpreter(benchmark, name):
    term = corpus_program(name).term

    def run():
        return run_direct(term, fuel=1_000_000)

    answer = benchmark(run)
    assert answer.value is not None


@pytest.mark.experiment("F2")
@pytest.mark.parametrize("name", WORKLOADS)
def test_semantic_cps_interpreter(benchmark, name):
    term = corpus_program(name).term
    reference = run_direct(term, fuel=1_000_000)

    def run():
        return run_semantic_cps(term, fuel=1_000_000)

    answer = benchmark(run)
    # Lemma 3.1: agreement with the direct interpreter
    if isinstance(reference.value, int):
        assert answer.value == reference.value


@pytest.mark.experiment("F3")
@pytest.mark.parametrize("name", WORKLOADS)
def test_syntactic_cps_interpreter(benchmark, name):
    term = corpus_program(name).term
    cps_term = cps_transform(term)
    reference = run_semantic_cps(term, fuel=1_000_000)

    def run():
        return run_syntactic_cps(cps_term, fuel=4_000_000, check=False)

    answer = benchmark(run)
    # Lemma 3.3: delta-agreement with the semantic-CPS interpreter
    assert answers_delta_related(reference, answer)


@pytest.mark.experiment("F3")
def test_cps_transformation_throughput(benchmark):
    term = corpus_program("factorial").term

    def run():
        return cps_transform(term)

    result = benchmark(run)
    assert result is not None
